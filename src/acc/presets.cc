#include "acc/presets.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cohmeleon::acc
{

namespace
{

struct PresetDef
{
    std::string_view name;
    TrafficProfile profile;
    std::uint64_t scratchpadBytes;
};

/**
 * The preset table. Rationale per accelerator:
 *  - autoencoder: dense encode+decode passes over the batch; moderate
 *    compute; separate output buffer.
 *  - cholesky: in-place column sweeps with strided panel accesses and
 *    O(n^3)-over-O(n^2) compute growth.
 *  - conv2d: streaming image tiles; weights reused across tiles
 *    (second pass); more reads than writes (halo rows).
 *  - fft: in-place log2(n) butterfly stages, balanced read/write,
 *    long bursts, little compute per byte.
 *  - gemm: streaming tiles of A/B with tile re-reads; read-dominated;
 *    compute grows as n^1.5 per byte.
 *  - mlp: weight-streaming inference; strongly memory-bound; tiny
 *    output per input row.
 *  - mriq: tiny data, huge trigonometric compute per byte (the
 *    classic compute-bound Parboil kernel).
 *  - nvdla: convolution engine with weight/feature reuse and bursty
 *    reads; superlinear compute with layer size.
 *  - nightvision: 4 chained engines (noise filter, histogram,
 *    equalization, DWT) -> 4 in-place passes, balanced r/w.
 *  - sort: merge-sort rounds -> log passes, in-place, streaming,
 *    read=write.
 *  - spmv: irregular gathers over the matrix/vector; short bursts;
 *    touches ~60% of the footprint per run; few writes.
 *  - viterbi: trellis walk, compute-bound, modest footprint reads.
 */
const PresetDef kPresets[] = {
    {"autoencoder",
     {AccessPattern::kStreaming, 32, 0.22, 1.0, 2.0, false, 1.0, 4, 1.0,
      false},
     16 * 1024},
    {"cholesky",
     {AccessPattern::kStrided, 16, 0.35, 1.5, 3.0, false, 2.0, 8, 1.0,
      true},
     16 * 1024},
    {"conv2d",
     {AccessPattern::kStreaming, 32, 0.30, 1.0, 2.0, false, 3.0, 4, 1.0,
      false},
     32 * 1024},
    {"fft",
     {AccessPattern::kStreaming, 64, 0.22, 1.0, 1.0, true, 1.0, 4, 1.0,
      true},
     32 * 1024},
    {"gemm",
     {AccessPattern::kStreaming, 64, 0.25, 1.5, 2.0, false, 4.0, 4, 1.0,
      false},
     32 * 1024},
    {"mlp",
     {AccessPattern::kStreaming, 64, 0.08, 1.0, 1.0, false, 8.0, 4, 1.0,
      false},
     16 * 1024},
    {"mriq",
     {AccessPattern::kStreaming, 16, 2.2, 1.0, 1.0, false, 4.0, 4, 1.0,
      false},
     8 * 1024},
    {"nvdla",
     {AccessPattern::kStreaming, 32, 0.40, 1.2, 2.0, false, 3.0, 4, 1.0,
      false},
     64 * 1024},
    {"nightvision",
     {AccessPattern::kStreaming, 32, 0.24, 1.0, 4.0, false, 1.0, 4, 1.0,
      true},
     16 * 1024},
    {"sort",
     {AccessPattern::kStreaming, 64, 0.20, 1.0, 1.0, true, 1.0, 4, 1.0,
      true},
     32 * 1024},
    {"spmv",
     {AccessPattern::kIrregular, 2, 0.15, 1.0, 1.0, false, 6.0, 4, 0.6,
      false},
     8 * 1024},
    {"viterbi",
     {AccessPattern::kStreaming, 16, 1.4, 1.0, 1.0, false, 2.0, 4, 1.0,
      false},
     8 * 1024},
};

const PresetDef *
findPreset(std::string_view name)
{
    for (const PresetDef &def : kPresets) {
        if (def.name == name)
            return &def;
    }
    return nullptr;
}

} // namespace

const std::vector<std::string_view> &
presetNames()
{
    static const std::vector<std::string_view> names = [] {
        std::vector<std::string_view> v;
        for (const PresetDef &def : kPresets)
            v.push_back(def.name);
        return v;
    }();
    return names;
}

bool
isPreset(std::string_view typeName)
{
    return typeName == "tgen" || findPreset(typeName) != nullptr;
}

TrafficProfile
makeTrafficGenProfile()
{
    TrafficProfile p;
    p.pattern = AccessPattern::kStreaming;
    p.burstLines = 32;
    p.computeFactor = 0.2;
    p.computeExponent = 1.0;
    p.reusePasses = 1.0;
    p.readWriteRatio = 2.0;
    p.strideLines = 4;
    p.accessFraction = 1.0;
    p.inPlace = false;
    return p;
}

AccConfig
makePreset(std::string_view typeName, std::string instanceName)
{
    if (typeName == "tgen")
        return makeTrafficGen(std::move(instanceName),
                              makeTrafficGenProfile());

    const PresetDef *def = findPreset(typeName);
    fatalIf(def == nullptr, "unknown accelerator preset '", typeName,
            "'");
    AccConfig cfg;
    cfg.name = std::move(instanceName);
    cfg.typeName = std::string(typeName);
    cfg.profile = def->profile;
    cfg.scratchpadBytes = def->scratchpadBytes;
    cfg.profile.validate();
    return cfg;
}

AccConfig
makeTrafficGen(std::string instanceName, const TrafficProfile &profile)
{
    AccConfig cfg;
    cfg.name = std::move(instanceName);
    cfg.typeName = "tgen";
    cfg.profile = profile;
    cfg.scratchpadBytes = 16 * 1024;
    cfg.profile.validate();
    return cfg;
}

} // namespace cohmeleon::acc

/**
 * @file
 * Fixed-function loosely-coupled accelerator model.
 *
 * The engine executes one coarse-grained invocation at a time as a
 * pipelined sequence of chunk-granularity load -> compute -> store
 * stages over a double-buffered scratchpad, the structure of ESP's
 * accelerators ("a pipelined datapath that overlaps communication
 * with computation", paper Section 3). All memory traffic flows
 * through the tile's DmaBridge under the coherence mode selected for
 * the invocation; the engine itself is coherence-agnostic.
 *
 * The per-invocation cycle counters the hardware monitors expose —
 * total active cycles and communication (DMA outstanding) cycles —
 * are maintained here (paper Section 4.1, "Evaluate").
 */

#ifndef COHMELEON_ACC_ACCELERATOR_HH
#define COHMELEON_ACC_ACCELERATOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "acc/traffic_profile.hh"
#include "coh/coherence_mode.hh"
#include "coh/dma_bridge.hh"
#include "mem/page_allocator.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cohmeleon::acc
{

/** Static configuration of one accelerator instance. */
struct AccConfig
{
    std::string name;     ///< instance name, e.g. "fft0"
    std::string typeName; ///< preset/type name, e.g. "fft"
    TrafficProfile profile;
    std::uint64_t scratchpadBytes = 16 * 1024; ///< private local memory
};

/** What one invocation did, as seen by the monitors and the runtime. */
struct InvocationMetrics
{
    Cycles startTime = 0; ///< accelerator start (after SW overheads)
    Cycles endTime = 0;
    Cycles totalCycles = 0; ///< endTime - startTime
    Cycles commCycles = 0;  ///< cycles with a DMA burst outstanding
    std::uint64_t dramAccessesExact = 0; ///< ground-truth attribution
    std::uint64_t llcHits = 0;
    std::uint64_t linesRead = 0;
    std::uint64_t linesWritten = 0;
    std::uint64_t footprintBytes = 0;
    coh::CoherenceMode mode = coh::CoherenceMode::kNonCohDma;
};

/** One accelerator instance (engine + socket state machine). */
class Accelerator
{
  public:
    using DoneCallback = std::function<void(const InvocationMetrics &)>;

    Accelerator(AccConfig cfg, AccId id, TileId tile,
                coh::DmaBridge &bridge, EventQueue &eq, Rng rng);

    /**
     * Begin one invocation over @p data (@p footprintBytes live
     * bytes) in @p mode; @p done fires when the engine drains.
     *
     * @param profile the effective traffic profile for this
     *        invocation (the instance profile, possibly overridden by
     *        the caller's operating-mode configuration)
     * @pre !busy()
     */
    void start(Cycles now, const mem::Allocation &data,
               std::uint64_t footprintBytes,
               const TrafficProfile &profile, coh::CoherenceMode mode,
               DoneCallback done);

    bool busy() const { return busy_; }
    AccId id() const { return id_; }
    TileId tile() const { return tile_; }
    const AccConfig &config() const { return cfg_; }
    coh::DmaBridge &bridge() { return bridge_; }

    /** Metrics of the most recently completed invocation. */
    const InvocationMetrics &lastMetrics() const { return metrics_; }

    std::uint64_t invocationsCompleted() const { return completed_; }

  private:
    struct Burst
    {
        bool isWrite = false;
        std::uint64_t startLine = 0;
        unsigned lines = 0;
        unsigned stride = 1;
        unsigned chunk = 0;
        bool lastOfChunk = false;
    };

    struct ChunkPlan
    {
        std::vector<Burst> reads;
        std::vector<Burst> writes;
        Cycles computeCycles = 0;
    };

    void planInvocation(const TrafficProfile &profile);
    void enqueueLoad(unsigned chunk);
    void pumpDma();
    void onBurstDone(const Burst &burst);
    void tryStartCompute();
    void onComputeDone(unsigned chunk);
    void maybeFinish();

    AccConfig cfg_;
    AccId id_;
    TileId tile_;
    coh::DmaBridge &bridge_;
    EventQueue &eq_;
    Rng rng_;

    // Per-invocation state.
    bool busy_ = false;
    const mem::Allocation *data_ = nullptr;
    coh::CoherenceMode mode_ = coh::CoherenceMode::kNonCohDma;
    DoneCallback done_;
    InvocationMetrics metrics_;
    std::vector<ChunkPlan> chunks_;
    std::vector<bool> chunkLoaded_;
    std::deque<Burst> dmaQueue_;
    bool dmaBusy_ = false;
    bool computeBusy_ = false;
    unsigned nextCompute_ = 0;
    unsigned computesDone_ = 0;
    unsigned loadsEnqueued_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace cohmeleon::acc

#endif // COHMELEON_ACC_ACCELERATOR_HH

/**
 * @file
 * Communication-pattern description of a fixed-function accelerator.
 *
 * The paper characterizes an accelerator, from the viewpoint of the
 * rest of the SoC, by its pattern of communication with the memory
 * hierarchy, and builds a traffic generator configurable over exactly
 * these properties (Section 5): access pattern (streaming, strided,
 * irregular), DMA burst length, compute duration, data reuse factor,
 * read-to-write ratio, stride length, access fraction, and in-place
 * storage. TrafficProfile is that parameter set; the 12 named
 * accelerators are presets of it (see acc/presets.hh).
 */

#ifndef COHMELEON_ACC_TRAFFIC_PROFILE_HH
#define COHMELEON_ACC_TRAFFIC_PROFILE_HH

#include <cstdint>
#include <string_view>

#include "sim/types.hh"

namespace cohmeleon::acc
{

/** Memory access pattern of the accelerator's DMA engine. */
enum class AccessPattern : std::uint8_t
{
    kStreaming, ///< long sequential bursts
    kStrided,   ///< fixed-stride line accesses
    kIrregular, ///< short bursts at random offsets
};

std::string_view toString(AccessPattern p);
AccessPattern patternFromString(std::string_view name);

/** The traffic-generator parameter set (paper Section 5). */
struct TrafficProfile
{
    AccessPattern pattern = AccessPattern::kStreaming;

    /** DMA burst length in cache lines. */
    unsigned burstLines = 16;

    /**
     * Compute cycles per byte, per pass, at the 64KB reference
     * footprint ("compute duration" of the traffic generator).
     */
    double computeFactor = 0.2;

    /**
     * Super-linearity of compute vs. footprint: per-byte compute
     * scales with (footprint / 64KB)^(computeExponent - 1), so
     * O(n^1.5)-per-byte kernels such as GEMM use 1.5.
     */
    double computeExponent = 1.0;

    /** Data reuse factor: number of passes over the footprint. */
    double reusePasses = 1.0;

    /** Passes grow as log2(lines) (FFT stages, merge-sort rounds). */
    bool logPasses = false;

    /** Lines read per line written. */
    double readWriteRatio = 2.0;

    /** Line stride for the strided pattern. */
    unsigned strideLines = 4;

    /** Fraction of the footprint touched per pass (irregular). */
    double accessFraction = 1.0;

    /** Output overwrites the input buffer. */
    bool inPlace = false;

    /** Sanity-check parameter ranges. @throws FatalError */
    void validate() const;

    /** Number of passes for a given footprint. */
    unsigned passesFor(std::uint64_t footprintBytes) const;

    /** Total compute cycles for one invocation of this profile. */
    Cycles computeCyclesFor(std::uint64_t footprintBytes) const;

    /** Lines read per pass over @p footprintLines. */
    std::uint64_t readLinesPerPass(std::uint64_t footprintLines) const;
};

} // namespace cohmeleon::acc

#endif // COHMELEON_ACC_TRAFFIC_PROFILE_HH

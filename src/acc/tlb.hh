/**
 * @file
 * Accelerator-tile TLB model.
 *
 * ESP allocates accelerator data in big pages, producing a page table
 * small enough to be loaded wholesale into the accelerator tile's TLB
 * at the start of the invocation; afterwards translation is miss-free
 * (paper Section 5). We model the load latency and the page-table
 * fetches it causes on the DRAM channel; "the overhead of loading the
 * TLB and address translation is included in all results", as in the
 * paper.
 */

#ifndef COHMELEON_ACC_TLB_HH
#define COHMELEON_ACC_TLB_HH

#include "mem/memory_system.hh"
#include "mem/page_allocator.hh"
#include "sim/types.hh"

namespace cohmeleon::acc
{

/** Per-tile TLB with whole-page-table preload. */
class Tlb
{
  public:
    /**
     * @param perPageCycles tile-side cycles to install one entry
     */
    Tlb(mem::MemorySystem &ms, TileId tile, Cycles perPageCycles = 30);

    /**
     * Preload the page table of @p alloc.
     * @return completion time; page-table DRAM traffic is charged to
     *         the allocation's first partition's channel
     */
    Cycles load(Cycles now, const mem::Allocation &alloc);

    std::uint64_t loads() const { return loads_; }
    std::uint64_t entriesLoaded() const { return entriesLoaded_; }

  private:
    /** Page-table entries per cache line (64B / 8B pointers). */
    static constexpr std::uint64_t kEntriesPerLine = 8;

    mem::MemorySystem &ms_;
    TileId tile_;
    Cycles perPageCycles_;
    std::uint64_t loads_ = 0;
    std::uint64_t entriesLoaded_ = 0;
};

} // namespace cohmeleon::acc

#endif // COHMELEON_ACC_TLB_HH

#include "acc/tlb.hh"

namespace cohmeleon::acc
{

Tlb::Tlb(mem::MemorySystem &ms, TileId tile, Cycles perPageCycles)
    : ms_(ms), tile_(tile), perPageCycles_(perPageCycles)
{
}

Cycles
Tlb::load(Cycles now, const mem::Allocation &alloc)
{
    ++loads_;
    const std::uint64_t pages = alloc.numPages();
    entriesLoaded_ += pages;

    // Fetch the page-table lines over the DMA planes; the table lives
    // next to the data, so charge its home partition's channel.
    const std::uint64_t ptLines =
        (pages + kEntriesPerLine - 1) / kEntriesPerLine;
    const unsigned part = ms_.map().partitionOf(alloc.pageBases()[0]);
    Cycles fetched = now;
    for (std::uint64_t i = 0; i < ptLines; ++i) {
        const Addr ptAddr = ms_.map().base(part) + i * kLineBytes;
        const Cycles arrive = ms_.noc().transfer(
            fetched, tile_, ms_.memTile(part), noc::Plane::kDmaReq,
            ms_.timing().reqBytes);
        const Cycles d = ms_.dram(part).access(arrive, ptAddr, false);
        fetched = ms_.noc().transfer(d, ms_.memTile(part), tile_,
                                     noc::Plane::kDmaRsp, kLineBytes);
    }
    return fetched + pages * perPageCycles_;
}

} // namespace cohmeleon::acc

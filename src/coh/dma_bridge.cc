#include "coh/dma_bridge.hh"

#include <algorithm>

#include "mem/l2_cache.hh"
#include "sim/logging.hh"

namespace cohmeleon::coh
{

DmaBridge::DmaBridge(mem::MemorySystem &ms, TileId tile,
                     mem::L2Cache *privateCache)
    : ms_(ms), tile_(tile), privateCache_(privateCache)
{
}

ModeMask
DmaBridge::availableModes() const
{
    ModeMask mask = maskOf(CoherenceMode::kNonCohDma) |
                    maskOf(CoherenceMode::kLlcCohDma) |
                    maskOf(CoherenceMode::kCohDma);
    if (privateCache_)
        mask |= maskOf(CoherenceMode::kFullyCoh);
    return mask;
}

BurstResult
DmaBridge::readLine(Cycles now, Addr lineAddr, CoherenceMode mode)
{
    BurstResult res;
    mem::AccessResult r;
    switch (mode) {
      case CoherenceMode::kNonCohDma:
        r = ms_.dramRead(now, lineAddr, tile_);
        break;
      case CoherenceMode::kLlcCohDma:
        r = ms_.dmaRead(now, lineAddr, false, tile_);
        break;
      case CoherenceMode::kCohDma:
        r = ms_.dmaRead(now, lineAddr, true, tile_);
        break;
      case CoherenceMode::kFullyCoh:
        panic_if(!privateCache_,
                 "fully-coherent access without a private cache");
        r = privateCache_->read(now, lineAddr);
        break;
    }
    res.done = r.done;
    res.dramAccesses = r.dramAccesses;
    res.llcHits = (r.dramAccesses == 0) ? 1 : 0;
    return res;
}

BurstResult
DmaBridge::writeLine(Cycles now, Addr lineAddr, CoherenceMode mode)
{
    BurstResult res;
    mem::AccessResult r;
    switch (mode) {
      case CoherenceMode::kNonCohDma:
        r = ms_.dramWrite(now, lineAddr, tile_);
        break;
      case CoherenceMode::kLlcCohDma:
        r = ms_.dmaWrite(now, lineAddr, false, tile_);
        break;
      case CoherenceMode::kCohDma:
        r = ms_.dmaWrite(now, lineAddr, true, tile_);
        break;
      case CoherenceMode::kFullyCoh:
        panic_if(!privateCache_,
                 "fully-coherent access without a private cache");
        r = privateCache_->write(now, lineAddr);
        break;
    }
    res.done = r.done;
    res.dramAccesses = r.dramAccesses;
    res.llcHits = (r.dramAccesses == 0) ? 1 : 0;
    return res;
}

BurstResult
DmaBridge::burstBatched(Cycles now, const mem::Allocation &alloc,
                        std::uint64_t startLine, unsigned lines,
                        unsigned strideLines, CoherenceMode mode,
                        bool isWrite)
{
    panic_if(lines == 0, "empty DMA burst");
    panic_if(strideLines == 0, "zero burst stride");

    // Plan the whole access vector up front.
    alloc.resolveLines(startLine, lines, strideLines, lineAddrs_);
    const Addr *addrs = lineAddrs_.data();

    BurstResult res;
    mem::BurstTotals tot;
    switch (mode) {
      case CoherenceMode::kNonCohDma:
        tot = ms_.dramBurst(now, addrs, lines, isWrite, tile_);
        break;
      case CoherenceMode::kLlcCohDma:
        tot = ms_.dmaBurst(now, addrs, lines, false, isWrite, tile_);
        break;
      case CoherenceMode::kCohDma:
        tot = ms_.dmaBurst(now, addrs, lines, true, isWrite, tile_);
        break;
      case CoherenceMode::kFullyCoh: {
        panic_if(!privateCache_,
                 "fully-coherent access without a private cache");
        tot.done = now;
        for (unsigned i = 0; i < lines; ++i) {
            const mem::AccessResult r =
                isWrite ? privateCache_->write(now, addrs[i])
                        : privateCache_->read(now, addrs[i]);
            tot.done = std::max(tot.done, r.done);
            tot.dramAccesses += r.dramAccesses;
            tot.llcHits += r.dramAccesses == 0 ? 1 : 0;
        }
        break;
      }
    }
    res.done = tot.done;
    res.dramAccesses = tot.dramAccesses;
    res.llcHits = tot.llcHits;
    return res;
}

BurstResult
DmaBridge::readBurst(Cycles now, const mem::Allocation &alloc,
                     std::uint64_t startLine, unsigned lines,
                     unsigned strideLines, CoherenceMode mode)
{
    return burstBatched(now, alloc, startLine, lines, strideLines, mode,
                        /*isWrite=*/false);
}

BurstResult
DmaBridge::writeBurst(Cycles now, const mem::Allocation &alloc,
                      std::uint64_t startLine, unsigned lines,
                      unsigned strideLines, CoherenceMode mode)
{
    return burstBatched(now, alloc, startLine, lines, strideLines, mode,
                        /*isWrite=*/true);
}

BurstResult
DmaBridge::readBurstPerLine(Cycles now, const mem::Allocation &alloc,
                            std::uint64_t startLine, unsigned lines,
                            unsigned strideLines, CoherenceMode mode)
{
    panic_if(lines == 0, "empty DMA burst");
    panic_if(strideLines == 0, "zero burst stride");
    BurstResult res;
    res.done = now;
    const std::uint64_t total = alloc.lines();
    for (unsigned i = 0; i < lines; ++i) {
        const std::uint64_t line =
            (startLine + std::uint64_t{i} * strideLines) % total;
        const BurstResult r =
            readLine(now, alloc.addrOfLine(line), mode);
        res.done = std::max(res.done, r.done);
        res.dramAccesses += r.dramAccesses;
        res.llcHits += r.llcHits;
    }
    return res;
}

BurstResult
DmaBridge::writeBurstPerLine(Cycles now, const mem::Allocation &alloc,
                             std::uint64_t startLine, unsigned lines,
                             unsigned strideLines, CoherenceMode mode)
{
    panic_if(lines == 0, "empty DMA burst");
    panic_if(strideLines == 0, "zero burst stride");
    BurstResult res;
    res.done = now;
    const std::uint64_t total = alloc.lines();
    for (unsigned i = 0; i < lines; ++i) {
        const std::uint64_t line =
            (startLine + std::uint64_t{i} * strideLines) % total;
        const BurstResult r =
            writeLine(now, alloc.addrOfLine(line), mode);
        res.done = std::max(res.done, r.done);
        res.dramAccesses += r.dramAccesses;
        res.llcHits += r.llcHits;
    }
    return res;
}

} // namespace cohmeleon::coh

/**
 * @file
 * The four accelerator cache-coherence modes classified by the paper
 * (Section 2), plus helpers for mode sets and naming.
 */

#ifndef COHMELEON_COH_COHERENCE_MODE_HH
#define COHMELEON_COH_COHERENCE_MODE_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace cohmeleon::coh
{

/**
 * Accelerator cache-coherence mode. The naming follows the paper: the
 * degree of hardware coherence (non-coherent, LLC-coherent, coherent)
 * and whether the accelerator accesses memory by DMA or through a
 * private cache.
 */
enum class CoherenceMode : std::uint8_t
{
    kNonCohDma = 0, ///< bypass the cache hierarchy; SW flushes L2s+LLC
    kLlcCohDma = 1, ///< DMA to the LLC; SW flushes the private caches
    kCohDma = 2,    ///< DMA to the LLC; HW recalls private-cache data
    kFullyCoh = 3,  ///< private cache, full MESI coherence
};

constexpr unsigned kNumModes = 4;

/** All modes in action-index order. */
constexpr std::array<CoherenceMode, kNumModes> kAllModes = {
    CoherenceMode::kNonCohDma,
    CoherenceMode::kLlcCohDma,
    CoherenceMode::kCohDma,
    CoherenceMode::kFullyCoh,
};

/** Short mode name as used in the paper's figures. */
std::string_view toString(CoherenceMode mode);

/** Parse a mode name (exact match of toString output).
 *  @throws FatalError on unknown names */
CoherenceMode modeFromString(std::string_view name);

/** Bitmask type over modes (bit = action index). */
using ModeMask = std::uint8_t;

constexpr ModeMask
maskOf(CoherenceMode m)
{
    return static_cast<ModeMask>(1u << static_cast<unsigned>(m));
}

/** Mask with every mode available. */
constexpr ModeMask kAllModesMask = 0b1111;

/** Whether @p mask contains @p m. */
constexpr bool
maskHas(ModeMask mask, CoherenceMode m)
{
    return (mask & maskOf(m)) != 0;
}

/** Does the mode require flushing the private caches before running? */
constexpr bool
requiresL2Flush(CoherenceMode m)
{
    return m == CoherenceMode::kNonCohDma ||
           m == CoherenceMode::kLlcCohDma;
}

/** Does the mode require flushing the LLC before running? */
constexpr bool
requiresLlcFlush(CoherenceMode m)
{
    return m == CoherenceMode::kNonCohDma;
}

/** Does the mode need a private cache in the accelerator tile? */
constexpr bool
needsPrivateCache(CoherenceMode m)
{
    return m == CoherenceMode::kFullyCoh;
}

} // namespace cohmeleon::coh

#endif // COHMELEON_COH_COHERENCE_MODE_HH

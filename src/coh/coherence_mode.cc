#include "coh/coherence_mode.hh"

#include "sim/logging.hh"

namespace cohmeleon::coh
{

std::string_view
toString(CoherenceMode mode)
{
    switch (mode) {
      case CoherenceMode::kNonCohDma:
        return "non-coh-dma";
      case CoherenceMode::kLlcCohDma:
        return "llc-coh-dma";
      case CoherenceMode::kCohDma:
        return "coh-dma";
      case CoherenceMode::kFullyCoh:
        return "full-coh";
    }
    return "unknown";
}

CoherenceMode
modeFromString(std::string_view name)
{
    for (CoherenceMode m : kAllModes) {
        if (toString(m) == name)
            return m;
    }
    fatal("unknown coherence mode '", name, "'");
}

} // namespace cohmeleon::coh

/**
 * @file
 * The accelerator-side bridge between coherence-agnostic DMA bursts
 * and the memory hierarchy.
 *
 * ESP accelerators "are designed with no notion of coherence. They
 * merely send out memory requests, and the surrounding system
 * transparently offers different ways, i.e. coherence modes, to
 * handle these requests" (paper Section 3). This class is that
 * surrounding socket logic: given the tile's current coherence-mode
 * configuration register, it maps each burst either straight to DRAM
 * (non-coherent), to the LLC (LLC-coherent / coherent DMA), or
 * through the tile's private cache (fully-coherent).
 */

#ifndef COHMELEON_COH_DMA_BRIDGE_HH
#define COHMELEON_COH_DMA_BRIDGE_HH

#include <cstdint>

#include "coh/coherence_mode.hh"
#include "mem/memory_system.hh"
#include "mem/page_allocator.hh"
#include "sim/types.hh"

namespace cohmeleon::coh
{

/** Result of one DMA burst through the bridge. */
struct BurstResult
{
    Cycles done = 0;               ///< completion of the whole burst
    std::uint64_t dramAccesses = 0; ///< exact off-chip lines caused
    std::uint64_t llcHits = 0;      ///< lines served on chip
};

/** Per-accelerator-tile coherence bridge. */
class DmaBridge
{
  public:
    /**
     * @param privateCache the tile's optional private cache; nullptr
     *        models the tiles that omit it (fully-coherent mode then
     *        becomes unavailable, as for five accelerators of the
     *        paper's SoC3)
     */
    DmaBridge(mem::MemorySystem &ms, TileId tile,
              mem::L2Cache *privateCache);

    /**
     * Read @p lines cache lines of @p alloc starting at logical line
     * @p startLine, advancing @p strideLines per access (1 =
     * contiguous; line indices wrap around the allocation). Lines
     * pipeline through the hierarchy; the burst completes when the
     * last line arrives.
     */
    BurstResult readBurst(Cycles now, const mem::Allocation &alloc,
                          std::uint64_t startLine, unsigned lines,
                          unsigned strideLines, CoherenceMode mode);

    /** Write counterpart of readBurst(). */
    BurstResult writeBurst(Cycles now, const mem::Allocation &alloc,
                           std::uint64_t startLine, unsigned lines,
                           unsigned strideLines, CoherenceMode mode);

    /** Single-line variants used for irregular access patterns. */
    BurstResult readLine(Cycles now, Addr lineAddr, CoherenceMode mode);
    BurstResult writeLine(Cycles now, Addr lineAddr, CoherenceMode mode);

    mem::L2Cache *privateCache() { return privateCache_; }
    TileId tile() const { return tile_; }

    /** Modes this tile supports (no private cache -> no fully-coh). */
    ModeMask availableModes() const;

  private:
    mem::MemorySystem &ms_;
    TileId tile_;
    mem::L2Cache *privateCache_;
};

} // namespace cohmeleon::coh

#endif // COHMELEON_COH_DMA_BRIDGE_HH

/**
 * @file
 * The accelerator-side bridge between coherence-agnostic DMA bursts
 * and the memory hierarchy.
 *
 * ESP accelerators "are designed with no notion of coherence. They
 * merely send out memory requests, and the surrounding system
 * transparently offers different ways, i.e. coherence modes, to
 * handle these requests" (paper Section 3). This class is that
 * surrounding socket logic: given the tile's current coherence-mode
 * configuration register, it maps each burst either straight to DRAM
 * (non-coherent), to the LLC (LLC-coherent / coherent DMA), or
 * through the tile's private cache (fully-coherent).
 *
 * Bursts run on a batched engine: the whole access vector is resolved
 * up front (Allocation::resolveLines — wrap and page split without
 * per-line division), then handed to the MemorySystem batch entry
 * points, which group the lines into same-partition runs and charge
 * NoC routes and DRAM timing per run. The pre-overhaul per-line path
 * is preserved (readBurstPerLine/writeBurstPerLine) as the reference
 * implementation: the differential tests assert the batched engine
 * reproduces its results bit-for-bit, and bench_mem measures the
 * speedup against it.
 */

#ifndef COHMELEON_COH_DMA_BRIDGE_HH
#define COHMELEON_COH_DMA_BRIDGE_HH

#include <cstdint>
#include <vector>

#include "coh/coherence_mode.hh"
#include "mem/memory_system.hh"
#include "mem/page_allocator.hh"
#include "sim/types.hh"

namespace cohmeleon::coh
{

/** Result of one DMA burst through the bridge. */
struct BurstResult
{
    Cycles done = 0;               ///< completion of the whole burst
    std::uint64_t dramAccesses = 0; ///< exact off-chip lines caused
    std::uint64_t llcHits = 0;      ///< lines served on chip

    bool operator==(const BurstResult &) const = default;
};

/** Per-accelerator-tile coherence bridge. */
class DmaBridge
{
  public:
    /**
     * @param privateCache the tile's optional private cache; nullptr
     *        models the tiles that omit it (fully-coherent mode then
     *        becomes unavailable, as for five accelerators of the
     *        paper's SoC3)
     */
    DmaBridge(mem::MemorySystem &ms, TileId tile,
              mem::L2Cache *privateCache);

    /**
     * Read @p lines cache lines of @p alloc starting at logical line
     * @p startLine, advancing @p strideLines per access (1 =
     * contiguous; line indices wrap around the allocation). Lines
     * pipeline through the hierarchy; the burst completes when the
     * last line arrives.
     */
    BurstResult readBurst(Cycles now, const mem::Allocation &alloc,
                          std::uint64_t startLine, unsigned lines,
                          unsigned strideLines, CoherenceMode mode);

    /** Write counterpart of readBurst(). */
    BurstResult writeBurst(Cycles now, const mem::Allocation &alloc,
                           std::uint64_t startLine, unsigned lines,
                           unsigned strideLines, CoherenceMode mode);

    /**
     * Reference per-line burst implementations (one readLine/writeLine
     * call per element, each paying the full mode dispatch, address
     * resolution, partition lookup, and NoC route computation). Kept
     * as the oracle for the batched engine and as the bench_mem
     * baseline; not used on the hot path.
     */
    BurstResult readBurstPerLine(Cycles now,
                                 const mem::Allocation &alloc,
                                 std::uint64_t startLine,
                                 unsigned lines, unsigned strideLines,
                                 CoherenceMode mode);
    BurstResult writeBurstPerLine(Cycles now,
                                  const mem::Allocation &alloc,
                                  std::uint64_t startLine,
                                  unsigned lines, unsigned strideLines,
                                  CoherenceMode mode);

    /** Single-line variants used for irregular access patterns. */
    BurstResult readLine(Cycles now, Addr lineAddr, CoherenceMode mode);
    BurstResult writeLine(Cycles now, Addr lineAddr, CoherenceMode mode);

    mem::L2Cache *privateCache() { return privateCache_; }
    TileId tile() const { return tile_; }

    /** Modes this tile supports (no private cache -> no fully-coh). */
    ModeMask availableModes() const;

  private:
    BurstResult burstBatched(Cycles now, const mem::Allocation &alloc,
                             std::uint64_t startLine, unsigned lines,
                             unsigned strideLines, CoherenceMode mode,
                             bool isWrite);

    mem::MemorySystem &ms_;
    TileId tile_;
    mem::L2Cache *privateCache_;
    std::vector<Addr> lineAddrs_; ///< reusable burst address plan
};

} // namespace cohmeleon::coh

#endif // COHMELEON_COH_DMA_BRIDGE_HH

/**
 * @file
 * Big-page allocator for accelerator data.
 *
 * ESP allocates accelerator data in big Linux pages so the page table
 * fits in the accelerator tile's TLB (paper Section 5). We model that
 * with a fixed big-page size and an allocator that can stripe the
 * pages of one allocation round-robin across memory partitions (so a
 * large workload exercises several LLC slices and DDR controllers) or
 * keep them within a single partition.
 */

#ifndef COHMELEON_MEM_PAGE_ALLOCATOR_HH
#define COHMELEON_MEM_PAGE_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "mem/addr_map.hh"
#include "sim/types.hh"

namespace cohmeleon::mem
{

/** How an allocation's pages are distributed over partitions. */
enum class StripePolicy
{
    kRoundRobin, ///< page i -> partition (start + i) % N (ESP default)
    kSingle,     ///< all pages from the least-loaded partition
};

/** A contiguous-looking buffer backed by scattered big pages. */
class Allocation
{
  public:
    Allocation() = default;
    Allocation(std::vector<Addr> pageBases, std::uint64_t bytes,
               std::uint64_t pageBytes);

    bool valid() const { return bytes_ != 0; }
    std::uint64_t bytes() const { return bytes_; }
    std::uint64_t pageBytes() const { return pageBytes_; }
    std::size_t numPages() const { return pageBases_.size(); }
    const std::vector<Addr> &pageBases() const { return pageBases_; }

    /** Number of cache lines covered by the live bytes. */
    std::uint64_t lines() const { return linesFor(bytes_); }

    /** Physical address of logical byte offset @p offset. */
    Addr addrOfOffset(std::uint64_t offset) const;

    /** Physical address of logical line index @p line. */
    Addr addrOfLine(std::uint64_t line) const;

    /**
     * Resolve a whole burst's addresses up front: line indices
     * startLine, startLine + strideLines, ... (each taken modulo
     * lines(), i.e. wrapping around the allocation), written into
     * @p out (resized to @p count). Produces exactly the addresses
     * @p count calls of addrOfLine() would, but with the wrap reduced
     * to an add-and-compare and the page split done by shift/mask when
     * the page size is a power of two — no per-line division.
     */
    void resolveLines(std::uint64_t startLine, unsigned count,
                      unsigned strideLines, std::vector<Addr> &out) const;

    /** Bytes of this allocation that live in partition @p p. */
    std::uint64_t footprintOnPartition(const AddressMap &map,
                                       unsigned p) const;

    /** Partitions with a nonzero share of this allocation, ascending. */
    std::vector<unsigned> partitionsUsed(const AddressMap &map) const;

  private:
    std::vector<Addr> pageBases_;
    std::uint64_t bytes_ = 0;
    std::uint64_t pageBytes_ = 0;
    unsigned pageShift_ = 0; ///< log2(pageBytes) if a power of two
};

/** Free-list big-page allocator over the partitioned space. */
class PageAllocator
{
  public:
    PageAllocator(const AddressMap &map, std::uint64_t pageBytes);

    /**
     * Allocate @p bytes (rounded up to whole pages).
     *
     * @throws FatalError when memory is exhausted.
     */
    Allocation allocate(std::uint64_t bytes,
                        StripePolicy policy = StripePolicy::kRoundRobin);

    /** Return an allocation's pages to the free lists. */
    void free(const Allocation &alloc);

    std::uint64_t pageBytes() const { return pageBytes_; }
    std::uint64_t freePages() const;
    std::uint64_t freePagesOn(unsigned partition) const;

  private:
    Addr takePage(unsigned partition);

    const AddressMap &map_;
    std::uint64_t pageBytes_;
    std::vector<std::vector<Addr>> freeLists_; ///< per partition
    unsigned rrCursor_ = 0;
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_PAGE_ALLOCATOR_HH

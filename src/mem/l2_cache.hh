/**
 * @file
 * Private L2 cache, used both by processor tiles and by accelerator
 * tiles operating in the fully-coherent mode (ESP attaches the same
 * cache IP to both kinds of tile).
 *
 * The cache is MESI, writeback, write-allocate. Misses and upgrades
 * are routed through the MemorySystem facade to the home LLC slice;
 * the LLC can reach back in (recall/invalidate) through recall().
 */

#ifndef COHMELEON_MEM_L2_CACHE_HH
#define COHMELEON_MEM_L2_CACHE_HH

#include <cstdint>
#include <string>

#include "mem/cache_array.hh"
#include "mem/mem_types.hh"
#include "sim/server.hh"
#include "sim/types.hh"

namespace cohmeleon::mem
{

class MemorySystem;

/** One private, MESI-coherent L2 cache. */
class L2Cache
{
  public:
    /**
     * @param id dense id assigned by the MemorySystem (directory bit)
     * @param tile tile hosting the cache (NoC endpoint)
     */
    L2Cache(unsigned id, std::string name, TileId tile,
            std::uint64_t sizeBytes, unsigned ways, MemorySystem &ms);

    /** Owner-side read of one line. */
    AccessResult read(Cycles now, Addr lineAddr);

    /** Owner-side full-line write. */
    AccessResult write(Cycles now, Addr lineAddr);

    /**
     * Write back every dirty line to the LLC and invalidate the whole
     * cache (the software-managed flush the non-coherent and
     * LLC-coherent DMA modes require).
     */
    AccessResult flushAll(Cycles now);

    /** Result of an LLC-initiated recall. */
    struct RecallResult
    {
        bool present = false;
        bool dirty = false;
        std::uint64_t version = 0;
    };

    /**
     * LLC-directed recall of @p lineAddr. Functional part of the
     * protocol: downgrades to Shared (or invalidates) and surrenders
     * dirty data. Timing is charged by the caller (the LLC slice).
     */
    RecallResult recall(Addr lineAddr, bool invalidate);

    /** Snoop/access port for contention accounting. */
    Server &port() { return port_; }

    unsigned id() const { return id_; }
    TileId tile() const { return tile_; }
    const std::string &name() const { return name_; }
    CacheArray &array() { return array_; }
    const CacheArray &array() const { return array_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t recallsServed() const { return recallsServed_; }

    /** Invalidate everything and zero statistics. */
    void reset();

  private:
    /** Handle the victim slot before refilling it. @return wb time. */
    Cycles evict(Cycles now, LineRef victim);

    unsigned id_;
    std::string name_;
    TileId tile_;
    MemorySystem &ms_;
    CacheArray array_;
    Server port_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t recallsServed_ = 0;
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_L2_CACHE_HH

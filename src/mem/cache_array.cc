#include "mem/cache_array.hh"

#include "sim/logging.hh"

namespace cohmeleon::mem
{

const char *
toString(CState s)
{
    switch (s) {
      case CState::kInvalid:
        return "I";
      case CState::kShared:
        return "S";
      case CState::kExclusive:
        return "E";
      case CState::kModified:
        return "M";
    }
    return "?";
}

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheArray::CacheArray(std::string name, std::uint64_t sizeBytes,
                       unsigned ways)
    : name_(std::move(name)), sizeBytes_(sizeBytes), ways_(ways)
{
    fatalIf(ways == 0, "associativity must be positive");
    fatalIf(sizeBytes % (static_cast<std::uint64_t>(ways) * kLineBytes) != 0,
            "cache size must be a multiple of ways * line size");
    const std::uint64_t sets =
        sizeBytes / (static_cast<std::uint64_t>(ways) * kLineBytes);
    fatalIf(!isPowerOfTwo(sets), "cache set count must be a power of two");
    sets_ = static_cast<unsigned>(sets);
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

unsigned
CacheArray::setOf(Addr lineAddr) const
{
    return static_cast<unsigned>(lineIndex(lineAddr)) & (sets_ - 1);
}

CacheLine *
CacheArray::find(Addr lineAddr)
{
    const unsigned set = setOf(lineAddr);
    CacheLine *base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        CacheLine &line = base[w];
        if (line.valid() && line.lineAddr == lineAddr)
            return &line;
    }
    return nullptr;
}

const CacheLine *
CacheArray::find(Addr lineAddr) const
{
    return const_cast<CacheArray *>(this)->find(lineAddr);
}

CacheLine *
CacheArray::victimFor(Addr lineAddr)
{
    const unsigned set = setOf(lineAddr);
    CacheLine *base = &lines_[static_cast<std::size_t>(set) * ways_];
    CacheLine *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        CacheLine &line = base[w];
        if (!line.valid())
            return &line;
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    return victim;
}

void
CacheArray::touch(CacheLine *line)
{
    line->lastUse = ++lruTick_;
}

void
CacheArray::forEachValid(const std::function<void(CacheLine &)> &fn)
{
    for (CacheLine &line : lines_) {
        if (line.valid())
            fn(line);
    }
}

void
CacheArray::invalidateAll()
{
    for (CacheLine &line : lines_)
        line.clear();
}

std::uint64_t
CacheArray::validLines() const
{
    std::uint64_t n = 0;
    for (const CacheLine &line : lines_)
        n += line.valid() ? 1 : 0;
    return n;
}

} // namespace cohmeleon::mem

#include "mem/cache_array.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cohmeleon::mem
{

const char *
toString(CState s)
{
    switch (s) {
      case CState::kInvalid:
        return "I";
      case CState::kShared:
        return "S";
      case CState::kExclusive:
        return "E";
      case CState::kModified:
        return "M";
    }
    return "?";
}

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheArray::CacheArray(std::string name, std::uint64_t sizeBytes,
                       unsigned ways)
    : name_(std::move(name)), sizeBytes_(sizeBytes), ways_(ways)
{
    fatalIf(ways == 0, "associativity must be positive");
    fatalIf(sizeBytes % (static_cast<std::uint64_t>(ways) * kLineBytes) != 0,
            "cache size must be a multiple of ways * line size");
    const std::uint64_t sets =
        sizeBytes / (static_cast<std::uint64_t>(ways) * kLineBytes);
    fatalIf(!isPowerOfTwo(sets), "cache set count must be a power of two");
    sets_ = static_cast<unsigned>(sets);

    const std::size_t slots = static_cast<std::size_t>(sets_) * ways_;
    tags_.assign(slots, kInvalidTag);
    states_.assign(slots, CState::kInvalid);
    dirty_.assign(slots, 0);
    versions_.assign(slots, 0);
    lastUse_.assign(slots, 0);
    sharers_.assign(slots, 0);
    owners_.assign(slots, -1);
}

void
CacheArray::invalidateAll()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    std::fill(states_.begin(), states_.end(), CState::kInvalid);
    std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{0});
    std::fill(versions_.begin(), versions_.end(), std::uint64_t{0});
    std::fill(lastUse_.begin(), lastUse_.end(), std::uint64_t{0});
    std::fill(sharers_.begin(), sharers_.end(), std::uint64_t{0});
    std::fill(owners_.begin(), owners_.end(), std::int16_t{-1});
}

std::uint64_t
CacheArray::validLines() const
{
    std::uint64_t n = 0;
    for (Addr tag : tags_)
        n += tag != kInvalidTag ? 1 : 0;
    return n;
}

} // namespace cohmeleon::mem

#include "mem/dram.hh"

#include "sim/logging.hh"

namespace cohmeleon::mem
{

DramController::DramController(std::string name, DramParams params)
    : name_(std::move(name)), params_(params), channel_(name_ + ".channel")
{
    fatalIf(params_.rowBytes == 0, "row size must be positive");
    rowShift_ = powerOfTwoShift(params_.rowBytes);
}

Cycles
DramController::access(Cycles now, Addr lineAddr, bool isWrite)
{
    const Addr row = rowOf(lineAddr);
    Cycles service = params_.lineService;
    if (row != openRow_) {
        service += params_.rowMissPenalty;
        ++rowMisses_;
        openRow_ = row;
    } else {
        ++rowHits_;
    }
    if (isWrite)
        ++writes_;
    else
        ++reads_;
    return channel_.finishAfter(now, service);
}

void
DramController::accessRun(Cycles first, Cycles stride,
                          const Addr *addrs, unsigned n, bool isWrite,
                          Cycles *done)
{
    const Cycles lineService = params_.lineService;
    const Cycles rowMissPenalty = params_.rowMissPenalty;
    Addr openRow = openRow_;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    Server::Run channel(channel_);
    Cycles now = first;
    for (unsigned i = 0; i < n; ++i) {
        const Addr row = rowOf(addrs[i]);
        Cycles service = lineService;
        if (row != openRow) {
            service += rowMissPenalty;
            ++rowMisses;
            openRow = row;
        } else {
            ++rowHits;
        }
        done[i] = channel.finishAfter(now, service);
        now += stride;
    }
    channel.commit();
    openRow_ = openRow;
    rowHits_ += rowHits;
    rowMisses_ += rowMisses;
    if (isWrite)
        writes_ += n;
    else
        reads_ += n;
}

void
DramController::reset()
{
    channel_.reset();
    openRow_ = ~Addr{0};
    reads_ = 0;
    writes_ = 0;
    rowHits_ = 0;
    rowMisses_ = 0;
}

} // namespace cohmeleon::mem

#include "mem/dram.hh"

namespace cohmeleon::mem
{

DramController::DramController(std::string name, DramParams params)
    : name_(std::move(name)), params_(params), channel_(name_ + ".channel")
{
}

Cycles
DramController::access(Cycles now, Addr lineAddr, bool isWrite)
{
    const Addr row = lineAddr / params_.rowBytes;
    Cycles service = params_.lineService;
    if (row != openRow_) {
        service += params_.rowMissPenalty;
        ++rowMisses_;
        openRow_ = row;
    } else {
        ++rowHits_;
    }
    if (isWrite)
        ++writes_;
    else
        ++reads_;
    return channel_.finishAfter(now, service);
}

void
DramController::reset()
{
    channel_.reset();
    openRow_ = ~Addr{0};
    reads_ = 0;
    writes_ = 0;
    rowHits_ = 0;
    rowMisses_ = 0;
}

} // namespace cohmeleon::mem

/**
 * @file
 * DRAM controller / channel model for one memory tile.
 *
 * The paper's memory tiles each have a dedicated DDR controller with a
 * 32-bit-per-cycle link (paper Section 4.3). We model the channel as a
 * FIFO server with a per-line service time plus an open-row model:
 * sequential accesses within the same DRAM row are row hits; switching
 * rows pays an activation penalty. Interleaved request streams from
 * concurrent accelerators therefore lose row locality, which is one of
 * the contention effects Figure 3 of the paper measures.
 *
 * The controller also owns the off-chip access counter exposed through
 * the hardware monitors.
 */

#ifndef COHMELEON_MEM_DRAM_HH
#define COHMELEON_MEM_DRAM_HH

#include <cstdint>
#include <string>

#include "sim/server.hh"
#include "sim/types.hh"

namespace cohmeleon::mem
{

/** Timing parameters of one DRAM channel. */
struct DramParams
{
    /** Cycles to stream one 64B line over a 32-bit link (64/4). */
    Cycles lineService = 16;
    /** Extra cycles when the access opens a different row. */
    Cycles rowMissPenalty = 28;
    /** Open-row (row-buffer) size in bytes. */
    std::uint64_t rowBytes = 2048;
};

/** One memory tile's DRAM channel. */
class DramController
{
  public:
    DramController(std::string name, DramParams params);

    /**
     * Access one line at @p lineAddr.
     *
     * @param now earliest start of service
     * @param isWrite write (true) or read (false)
     * @return completion time of the transfer
     */
    Cycles access(Cycles now, Addr lineAddr, bool isWrite);

    /**
     * Batch entry point for DMA bursts: service @p n line accesses,
     * access k starting no earlier than @p first + k * @p stride (the
     * uniform arrival spacing of a request run), writing the
     * completion times to @p done. Row tracking, channel-queue state,
     * and counters are carried in registers across the run; results
     * are identical to n calls of access() in order.
     */
    void accessRun(Cycles first, Cycles stride, const Addr *addrs,
                   unsigned n, bool isWrite, Cycles *done);

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t accesses() const { return reads_ + writes_; }
    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }

    /** Busy-time of the channel (bandwidth-utilization indicator). */
    Cycles busyCycles() const { return channel_.busyCycles(); }
    Cycles waitCycles() const { return channel_.waitCycles(); }

    const DramParams &params() const { return params_; }
    const std::string &name() const { return name_; }

    void reset();

  private:
    /** Row index of @p lineAddr (shift when rowBytes is a power of
     *  two, the common configuration; division otherwise). */
    Addr
    rowOf(Addr lineAddr) const
    {
        return rowShift_ != 0 ? lineAddr >> rowShift_
                              : lineAddr / params_.rowBytes;
    }

    std::string name_;
    DramParams params_;
    unsigned rowShift_ = 0; ///< log2(rowBytes) when a power of two
    Server channel_;
    Addr openRow_ = ~Addr{0};
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_DRAM_HH

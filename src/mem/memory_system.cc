#include "mem/memory_system.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cohmeleon::mem
{

MemorySystem::MemorySystem(noc::NocModel &noc, const AddressMap &map,
                           const MemTimingParams &timing,
                           std::uint64_t llcSliceBytes, unsigned llcWays,
                           std::vector<TileId> memTiles)
    : noc_(noc), map_(map), timing_(timing), memTiles_(std::move(memTiles))
{
    fatalIf(memTiles_.size() != map.numPartitions(),
            "need one memory tile per address partition");
    for (unsigned p = 0; p < map.numPartitions(); ++p) {
        const std::string base = "mem" + std::to_string(p);
        drams_.push_back(std::make_unique<DramController>(base + ".ddr",
                                                          timing.dram));
        slices_.push_back(std::make_unique<LlcPartition>(
            p, base + ".llc", memTiles_[p], llcSliceBytes, llcWays,
            *drams_[p], *this));
    }
}

L2Cache &
MemorySystem::addL2(const std::string &name, TileId tile,
                    std::uint64_t sizeBytes, unsigned ways)
{
    fatalIf(l2s_.size() >= 64,
            "directory sharer mask supports at most 64 private caches");
    const unsigned id = static_cast<unsigned>(l2s_.size());
    l2s_.push_back(std::make_unique<L2Cache>(id, name, tile, sizeBytes,
                                             ways, *this));
    return *l2s_.back();
}

FillResult
MemorySystem::getS(Cycles now, Addr lineAddr, L2Cache &req)
{
    const unsigned p = map_.partitionOf(lineAddr);
    const Cycles arrive =
        noc_.transfer(now, req.tile(), memTiles_[p],
                      noc::Plane::kCohReq, timing_.reqBytes);
    return slices_[p]->getS(arrive, lineAddr, req);
}

FillResult
MemorySystem::getM(Cycles now, Addr lineAddr, L2Cache &req)
{
    const unsigned p = map_.partitionOf(lineAddr);
    const Cycles arrive =
        noc_.transfer(now, req.tile(), memTiles_[p],
                      noc::Plane::kCohReq, timing_.reqBytes);
    return slices_[p]->getM(arrive, lineAddr, req);
}

Cycles
MemorySystem::putWriteback(Cycles now, Addr lineAddr, L2Cache &from,
                           std::uint64_t version)
{
    const unsigned p = map_.partitionOf(lineAddr);
    const Cycles arrive =
        noc_.transfer(now, from.tile(), memTiles_[p],
                      noc::Plane::kCohReq, kLineBytes);
    return slices_[p]->putWriteback(arrive, lineAddr, from, version);
}

void
MemorySystem::putClean(Addr lineAddr, L2Cache &from)
{
    sliceFor(lineAddr).putClean(lineAddr, from);
}

AccessResult
MemorySystem::dmaRead(Cycles now, Addr lineAddr, bool coherent,
                      TileId reqTile)
{
    const unsigned p = map_.partitionOf(lineAddr);
    const Cycles arrive =
        noc_.transfer(now, reqTile, memTiles_[p], noc::Plane::kDmaReq,
                      timing_.reqBytes);
    return slices_[p]->dmaRead(arrive, lineAddr, coherent, reqTile);
}

AccessResult
MemorySystem::dmaWrite(Cycles now, Addr lineAddr, bool coherent,
                       TileId reqTile)
{
    const unsigned p = map_.partitionOf(lineAddr);
    const Cycles arrive = noc_.transfer(
        now, reqTile, memTiles_[p], noc::Plane::kDmaReq, kLineBytes);
    AccessResult res =
        slices_[p]->dmaWrite(arrive, lineAddr, coherent, reqTile);
    res.done = noc_.transfer(res.done, memTiles_[p], reqTile,
                             noc::Plane::kDmaRsp, timing_.reqBytes);
    return res;
}

AccessResult
MemorySystem::dramRead(Cycles now, Addr lineAddr, TileId reqTile)
{
    const unsigned p = map_.partitionOf(lineAddr);
    const Cycles arrive =
        noc_.transfer(now, reqTile, memTiles_[p], noc::Plane::kDmaReq,
                      timing_.reqBytes);
    const Cycles d = drams_[p]->access(arrive, lineAddr, false);
    versions_.checkDramRead(lineAddr, "non-coh-dma");
    AccessResult res;
    res.dramAccesses = 1;
    res.done = noc_.transfer(d, memTiles_[p], reqTile,
                             noc::Plane::kDmaRsp, kLineBytes);
    return res;
}

AccessResult
MemorySystem::dramWrite(Cycles now, Addr lineAddr, TileId reqTile)
{
    const unsigned p = map_.partitionOf(lineAddr);
    const Cycles arrive = noc_.transfer(
        now, reqTile, memTiles_[p], noc::Plane::kDmaReq, kLineBytes);
    const Cycles d = drams_[p]->access(arrive, lineAddr, true);
    versions_.bumpDramWrite(lineAddr);
    AccessResult res;
    res.dramAccesses = 1;
    res.done = noc_.transfer(d, memTiles_[p], reqTile,
                             noc::Plane::kDmaRsp, timing_.reqBytes);
    return res;
}

BurstTotals
MemorySystem::dmaBurst(Cycles now, const Addr *addrs, unsigned n,
                       bool coherent, bool isWrite, TileId reqTile)
{
    BurstTotals tot;
    tot.done = now;
    unsigned i = 0;
    while (i < n) {
        const unsigned p = map_.partitionOfUnchecked(addrs[i]);
        unsigned j = i + 1;
        while (j < n && map_.partitionOfUnchecked(addrs[j]) == p)
            ++j;
        const unsigned cnt = j - i;
        LlcPartition &slice = *slices_[p];

        // Phase 1: the run's DMA requests, all injected at `now`, in
        // line order — exactly the request transfers the per-line path
        // charges, with the route planned once and the uniform packet
        // stream collapsed to closed form.
        const noc::TransferPlan req =
            noc_.plan(reqTile, memTiles_[p], noc::Plane::kDmaReq,
                      isWrite ? kLineBytes : timing_.reqBytes);
        const noc::NocModel::TransferRun reqRun =
            noc_.transferRun(req, now, cnt);

        // Phase 2: the slice services the run in line order.
        batchResults_.resize(cnt);
        if (isWrite)
            slice.dmaWriteBatch(reqRun.first, reqRun.stride, addrs + i,
                                cnt, coherent, batchResults_.data());
        else
            slice.dmaReadBatch(reqRun.first, reqRun.stride, addrs + i,
                               cnt, coherent, reqTile,
                               batchResults_.data());

        // Phase 3 (writes only; reads answer inside the slice): the
        // per-line acknowledgements back to the requester.
        if (isWrite) {
            const noc::TransferPlan rsp =
                noc_.plan(memTiles_[p], reqTile, noc::Plane::kDmaRsp,
                          timing_.reqBytes);
            batchDone_.resize(cnt);
            for (unsigned k = 0; k < cnt; ++k)
                batchDone_[k] = batchResults_[k].done;
            noc_.transferEach(rsp, batchDone_.data(), cnt,
                              batchDone_.data());
            for (unsigned k = 0; k < cnt; ++k)
                batchResults_[k].done = batchDone_[k];
        }
        for (unsigned k = 0; k < cnt; ++k) {
            const AccessResult &r = batchResults_[k];
            tot.done = std::max(tot.done, r.done);
            tot.dramAccesses += r.dramAccesses;
            tot.llcHits += r.dramAccesses == 0 ? 1 : 0;
        }
        i = j;
    }
    return tot;
}

BurstTotals
MemorySystem::dramBurst(Cycles now, const Addr *addrs, unsigned n,
                        bool isWrite, TileId reqTile)
{
    BurstTotals tot;
    tot.done = now;
    unsigned i = 0;
    while (i < n) {
        const unsigned p = map_.partitionOfUnchecked(addrs[i]);
        unsigned j = i + 1;
        while (j < n && map_.partitionOfUnchecked(addrs[j]) == p)
            ++j;
        const unsigned cnt = j - i;

        const noc::TransferPlan req =
            noc_.plan(reqTile, memTiles_[p], noc::Plane::kDmaReq,
                      isWrite ? kLineBytes : timing_.reqBytes);
        const noc::NocModel::TransferRun reqRun =
            noc_.transferRun(req, now, cnt);

        batchDone_.resize(cnt);
        drams_[p]->accessRun(reqRun.first, reqRun.stride, addrs + i,
                             cnt, isWrite, batchDone_.data());
        if (isWrite) {
            for (unsigned k = 0; k < cnt; ++k)
                versions_.bumpDramWrite(addrs[i + k]);
        } else {
            for (unsigned k = 0; k < cnt; ++k)
                versions_.checkDramRead(addrs[i + k], "non-coh-dma");
        }

        const noc::TransferPlan rsp =
            noc_.plan(memTiles_[p], reqTile, noc::Plane::kDmaRsp,
                      isWrite ? timing_.reqBytes : kLineBytes);
        noc_.transferEach(rsp, batchDone_.data(), cnt,
                          batchDone_.data());
        for (unsigned k = 0; k < cnt; ++k)
            tot.done = std::max(tot.done, batchDone_[k]);
        tot.dramAccesses += cnt;
        i = j;
    }
    return tot;
}

AccessResult
MemorySystem::flushL2s(Cycles now, const std::vector<L2Cache *> &which)
{
    AccessResult res;
    res.done = now;
    auto flushOne = [&](L2Cache &l2) {
        const AccessResult r = l2.flushAll(now);
        res.done = std::max(res.done, r.done);
        res.dramAccesses += r.dramAccesses;
    };
    if (which.empty()) {
        for (auto &l2 : l2s_)
            flushOne(*l2);
    } else {
        for (L2Cache *l2 : which)
            flushOne(*l2);
    }
    return res;
}

AccessResult
MemorySystem::flushLlc(Cycles now)
{
    AccessResult res;
    res.done = now;
    for (auto &slice : slices_) {
        const AccessResult r = slice->flushAll(now);
        res.done = std::max(res.done, r.done);
        res.dramAccesses += r.dramAccesses;
    }
    return res;
}

std::uint64_t
MemorySystem::totalDramAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &d : drams_)
        total += d->accesses();
    return total;
}

std::vector<std::string>
MemorySystem::checkDirectoryInvariants()
{
    std::vector<std::string> problems;
    auto report = [&](const std::string &msg) {
        if (problems.size() < 32)
            problems.push_back(msg);
    };
    auto hex = [](Addr a) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(a));
        return std::string(buf);
    };

    // Private-cache side: inclusion and registration.
    for (const auto &l2 : l2s_) {
        l2->array().forEachValid([&](LineRef line) {
            LineRef home =
                sliceFor(line.lineAddr()).array().find(line.lineAddr());
            if (!home) {
                report(l2->name() + " holds " + hex(line.lineAddr()) +
                       " (" + toString(line.state()) +
                       ") absent from the LLC (inclusion)");
                return;
            }
            const std::uint64_t bit = std::uint64_t{1} << l2->id();
            if (line.state() == CState::kShared) {
                if (!(home.sharers() & bit))
                    report(l2->name() + " shares " +
                           hex(line.lineAddr()) +
                           " without a directory sharer bit");
            } else {
                if (home.owner() != static_cast<int>(l2->id()))
                    report(l2->name() + " owns " +
                           hex(line.lineAddr()) +
                           " but the directory owner is " +
                           std::to_string(home.owner()));
            }
        });
    }

    // Directory side: no dangling registrations.
    for (auto &slice : slices_) {
        slice->array().forEachValid([&](LineRef line) {
            if (line.owner() >= 0) {
                const auto &owner =
                    *l2s_[static_cast<unsigned>(line.owner())];
                const LineRef held =
                    l2s_[static_cast<unsigned>(line.owner())]
                        ->array()
                        .find(line.lineAddr());
                if (!held || held.state() == CState::kShared)
                    report(slice->name() + " lists " + owner.name() +
                           " as owner of " + hex(line.lineAddr()) +
                           " which it does not own");
            }
            std::uint64_t mask = line.sharers();
            while (mask) {
                const unsigned id =
                    static_cast<unsigned>(__builtin_ctzll(mask));
                mask &= mask - 1;
                if (id >= l2s_.size() ||
                    !l2s_[id]->array().find(line.lineAddr()))
                    report(slice->name() + " has a dangling sharer " +
                           std::to_string(id) + " for " +
                           hex(line.lineAddr()));
            }
        });
    }
    return problems;
}

void
MemorySystem::reset()
{
    for (auto &l2 : l2s_)
        l2->reset();
    for (auto &slice : slices_)
        slice->reset();
    for (auto &d : drams_)
        d->reset();
    versions_.reset();
}

} // namespace cohmeleon::mem

#include "mem/version_tracker.hh"

#include <sstream>

namespace cohmeleon::mem
{

void
VersionTracker::initDirectory(std::size_t capacity)
{
    dir_.assign(capacity, DirEntry{});
    growAt_ = capacity - capacity / 4; // grow at 75% occupancy
    hashShift_ = 64;
    while ((std::size_t{1} << (64 - hashShift_)) < capacity)
        --hashShift_;
    cachedKey_ = kEmptyKey;
    cachedBlock_ = kNoBlock;
}

VersionTracker::Block &
VersionTracker::blockFor(Addr lineAddr)
{
    const std::uint64_t key = blockKeyOf(lineAddr);
    if (key == cachedKey_)
        return blocks_[cachedBlock_];
    const std::size_t mask = dir_.size() - 1;
    std::size_t idx = static_cast<std::size_t>(hashOf(key) >> hashShift_);
    while (true) {
        DirEntry &e = dir_[idx];
        if (e.key == key) {
            cachedKey_ = key;
            cachedBlock_ = e.block;
            return blocks_[e.block];
        }
        if (e.key == kEmptyKey) {
            if (blocks_.size() >= growAt_) {
                growDirectory();
                return blockFor(key << (kLineShift + kBlockShift));
            }
            e.key = key;
            e.block = static_cast<std::uint32_t>(blocks_.size());
            blocks_.emplace_back();
            cachedKey_ = key;
            cachedBlock_ = e.block;
            return blocks_[e.block];
        }
        idx = (idx + 1) & mask;
    }
}

void
VersionTracker::growDirectory()
{
    std::vector<DirEntry> old = std::move(dir_);
    initDirectory(old.size() * 2);
    const std::size_t mask = dir_.size() - 1;
    for (const DirEntry &e : old) {
        if (e.key == kEmptyKey)
            continue;
        std::size_t idx =
            static_cast<std::size_t>(hashOf(e.key) >> hashShift_);
        while (dir_[idx].key != kEmptyKey)
            idx = (idx + 1) & mask;
        dir_[idx] = e;
    }
}

void
VersionTracker::recordViolation(Addr lineAddr, std::uint64_t held,
                                std::uint64_t want, const char *reader)
{
    ++violations_;
    if (violationLog_.size() < kMaxLoggedViolations) {
        std::ostringstream os;
        os << reader << " read line 0x" << std::hex << lineAddr
           << std::dec << " version " << held << ", latest is " << want;
        violationLog_.push_back(os.str());
    }
}

void
VersionTracker::reset()
{
    counter_ = 0;
    violations_ = 0;
    blocks_.clear();
    initDirectory(kInitialDirCapacity);
    violationLog_.clear();
}

} // namespace cohmeleon::mem

#include "mem/version_tracker.hh"

#include <sstream>

namespace cohmeleon::mem
{

std::uint64_t
VersionTracker::bumpLatest(Addr lineAddr)
{
    if (!enabled_)
        return 0;
    const std::uint64_t v = ++counter_;
    latest_[lineAddr] = v;
    return v;
}

std::uint64_t
VersionTracker::latest(Addr lineAddr) const
{
    const auto it = latest_.find(lineAddr);
    return it == latest_.end() ? 0 : it->second;
}

std::uint64_t
VersionTracker::dramVersion(Addr lineAddr) const
{
    const auto it = dram_.find(lineAddr);
    return it == dram_.end() ? 0 : it->second;
}

void
VersionTracker::setDramVersion(Addr lineAddr, std::uint64_t version)
{
    if (!enabled_)
        return;
    dram_[lineAddr] = version;
}

void
VersionTracker::checkRead(Addr lineAddr, std::uint64_t held,
                          const char *reader)
{
    if (!enabled_)
        return;
    const std::uint64_t want = latest(lineAddr);
    if (held == want)
        return;
    ++violations_;
    if (violationLog_.size() < kMaxLoggedViolations) {
        std::ostringstream os;
        os << reader << " read line 0x" << std::hex << lineAddr
           << std::dec << " version " << held << ", latest is " << want;
        violationLog_.push_back(os.str());
    }
}

void
VersionTracker::reset()
{
    counter_ = 0;
    violations_ = 0;
    latest_.clear();
    dram_.clear();
    violationLog_.clear();
}

} // namespace cohmeleon::mem

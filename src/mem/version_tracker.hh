/**
 * @file
 * Coherence correctness checker.
 *
 * Every write anywhere in the system stamps the written line with a
 * globally increasing version. Cached copies and the DRAM image carry
 * the stamp of the data they hold. Whenever a consumer reads a line,
 * the held stamp is compared against the newest stamp for that line;
 * a mismatch means the protocol (or the software-managed flushing a
 * coherence mode requires) served stale data.
 *
 * The runtime performs the flushes each mode requires, so production
 * runs must report zero violations; the property tests also drive the
 * modes *without* the required flushes and assert that the checker
 * catches the resulting staleness.
 */

#ifndef COHMELEON_MEM_VERSION_TRACKER_HH
#define COHMELEON_MEM_VERSION_TRACKER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace cohmeleon::mem
{

/** Global latest-write registry plus the DRAM version image. */
class VersionTracker
{
  public:
    /** Record a new write to @p lineAddr. @return the new stamp. */
    std::uint64_t bumpLatest(Addr lineAddr);

    /** Newest stamp for @p lineAddr (0 if never written). */
    std::uint64_t latest(Addr lineAddr) const;

    /** DRAM image: stamp of the data currently in main memory. */
    std::uint64_t dramVersion(Addr lineAddr) const;
    void setDramVersion(Addr lineAddr, std::uint64_t version);

    /**
     * Check a read observation: @p held is the stamp of the data the
     * reader was served. Counts (and remembers a few) violations.
     *
     * @param reader short description for diagnostics
     */
    void checkRead(Addr lineAddr, std::uint64_t held,
                   const char *reader);

    std::uint64_t violations() const { return violations_; }
    const std::vector<std::string> &violationLog() const
    {
        return violationLog_;
    }

    /** Enable/disable checking (off saves time in large sweeps). */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    void reset();

  private:
    static constexpr std::size_t kMaxLoggedViolations = 16;

    bool enabled_ = true;
    std::uint64_t counter_ = 0;
    std::uint64_t violations_ = 0;
    std::unordered_map<Addr, std::uint64_t> latest_;
    std::unordered_map<Addr, std::uint64_t> dram_;
    std::vector<std::string> violationLog_;
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_VERSION_TRACKER_HH

/**
 * @file
 * Coherence correctness checker.
 *
 * Every write anywhere in the system stamps the written line with a
 * globally increasing version. Cached copies and the DRAM image carry
 * the stamp of the data they hold. Whenever a consumer reads a line,
 * the held stamp is compared against the newest stamp for that line;
 * a mismatch means the protocol (or the software-managed flushing a
 * coherence mode requires) served stale data.
 *
 * The runtime performs the flushes each mode requires, so production
 * runs must report zero violations; the property tests also drive the
 * modes *without* the required flushes and assert that the checker
 * catches the resulting staleness.
 *
 * The tracker is charged on every line of every DMA burst, so its
 * storage is organized for burst locality: stamps live in blocks of
 * 64 consecutive lines ({latest[64], dram[64]} per block, allocated
 * on first write), reached through an open-addressed block directory
 * with a one-entry cache. A contiguous or moderately strided burst
 * resolves one directory probe per block instead of two node-based
 * map lookups per line. The DMA paths use the fused checkDramRead()
 * / bumpDramWrite() helpers, which touch the line's block once.
 */

#ifndef COHMELEON_MEM_VERSION_TRACKER_HH
#define COHMELEON_MEM_VERSION_TRACKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cohmeleon::mem
{

/** Global latest-write registry plus the DRAM version image. */
class VersionTracker
{
  public:
    VersionTracker() { initDirectory(kInitialDirCapacity); }

    /** Record a new write to @p lineAddr. @return the new stamp. */
    std::uint64_t
    bumpLatest(Addr lineAddr)
    {
        if (!enabled_)
            return 0;
        return blockFor(lineAddr).latest[subOf(lineAddr)] = ++counter_;
    }

    /** Newest stamp for @p lineAddr (0 if never written). */
    std::uint64_t
    latest(Addr lineAddr) const
    {
        const Block *b = findBlock(lineAddr);
        return b ? b->latest[subOf(lineAddr)] : 0;
    }

    /** DRAM image: stamp of the data currently in main memory. */
    std::uint64_t
    dramVersion(Addr lineAddr) const
    {
        const Block *b = findBlock(lineAddr);
        return b ? b->dram[subOf(lineAddr)] : 0;
    }

    void
    setDramVersion(Addr lineAddr, std::uint64_t version)
    {
        if (!enabled_)
            return;
        blockFor(lineAddr).dram[subOf(lineAddr)] = version;
    }

    /**
     * Check a read observation: @p held is the stamp of the data the
     * reader was served. Counts (and remembers a few) violations.
     *
     * @param reader short description for diagnostics
     */
    void
    checkRead(Addr lineAddr, std::uint64_t held, const char *reader)
    {
        if (!enabled_)
            return;
        const Block *b = findBlock(lineAddr);
        const std::uint64_t want = b ? b->latest[subOf(lineAddr)] : 0;
        if (held != want)
            recordViolation(lineAddr, held, want, reader);
    }

    /** Fused checkRead(a, dramVersion(a), reader): one block access
     *  for the non-coherent-DMA read path. */
    void
    checkDramRead(Addr lineAddr, const char *reader)
    {
        if (!enabled_)
            return;
        const Block *b = findBlock(lineAddr);
        if (!b)
            return; // never written: DRAM holds version 0 == latest 0
        const unsigned sub = subOf(lineAddr);
        if (b->dram[sub] != b->latest[sub])
            recordViolation(lineAddr, b->dram[sub], b->latest[sub],
                            reader);
    }

    /** Fused setDramVersion(a, bumpLatest(a)): one block access for
     *  the non-coherent-DMA write path. */
    void
    bumpDramWrite(Addr lineAddr)
    {
        if (!enabled_)
            return;
        Block &b = blockFor(lineAddr);
        const unsigned sub = subOf(lineAddr);
        b.latest[sub] = b.dram[sub] = ++counter_;
    }

    std::uint64_t violations() const { return violations_; }
    const std::vector<std::string> &violationLog() const
    {
        return violationLog_;
    }

    /** Enable/disable checking (off saves time in large sweeps). */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    void reset();

  private:
    static constexpr std::size_t kMaxLoggedViolations = 16;
    static constexpr std::size_t kInitialDirCapacity = 256;
    /** Lines per block; blocks are aligned groups of consecutive
     *  lines, so a burst walks within a block. */
    static constexpr unsigned kBlockShift = 6;
    static constexpr std::size_t kBlockLines = std::size_t{1}
                                               << kBlockShift;
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
    static constexpr std::uint32_t kNoBlock = ~std::uint32_t{0};

    struct Block
    {
        std::uint64_t latest[kBlockLines] = {};
        std::uint64_t dram[kBlockLines] = {};
    };

    /** Directory slot: block key -> index into blocks_. */
    struct DirEntry
    {
        std::uint64_t key = kEmptyKey;
        std::uint32_t block = kNoBlock;
    };

    static std::uint64_t
    blockKeyOf(Addr lineAddr)
    {
        return (lineAddr >> kLineShift) >> kBlockShift;
    }

    static unsigned
    subOf(Addr lineAddr)
    {
        return static_cast<unsigned>(lineAddr >> kLineShift) &
               (kBlockLines - 1);
    }

    static std::uint64_t
    hashOf(std::uint64_t key)
    {
        return key * 0x9E3779B97F4A7C15ull; // Fibonacci hashing
    }

    /** Directory probe, read-only; null if the block was never
     *  written. Refreshes the one-entry cache on a hit. */
    const Block *
    findBlock(Addr lineAddr) const
    {
        const std::uint64_t key = blockKeyOf(lineAddr);
        if (key == cachedKey_)
            return &blocks_[cachedBlock_];
        const std::size_t mask = dir_.size() - 1;
        std::size_t idx =
            static_cast<std::size_t>(hashOf(key) >> hashShift_);
        while (true) {
            const DirEntry &e = dir_[idx];
            if (e.key == key) {
                cachedKey_ = key;
                cachedBlock_ = e.block;
                return &blocks_[e.block];
            }
            if (e.key == kEmptyKey)
                return nullptr;
            idx = (idx + 1) & mask;
        }
    }

    Block &blockFor(Addr lineAddr); ///< insert-if-absent variant

    void initDirectory(std::size_t capacity);
    void growDirectory();
    void recordViolation(Addr lineAddr, std::uint64_t held,
                         std::uint64_t want, const char *reader);

    bool enabled_ = true;
    std::uint64_t counter_ = 0;
    std::uint64_t violations_ = 0;
    std::vector<DirEntry> dir_;
    std::vector<Block> blocks_;
    std::size_t growAt_ = 0;
    unsigned hashShift_ = 0; ///< 64 - log2(directory size)
    mutable std::uint64_t cachedKey_ = kEmptyKey;
    mutable std::uint32_t cachedBlock_ = kNoBlock;
    std::vector<std::string> violationLog_;
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_VERSION_TRACKER_HH

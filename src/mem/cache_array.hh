/**
 * @file
 * Set-associative cache array with MESI metadata and directory
 * side-information, shared by the private L2s and the LLC slices.
 *
 * The array is purely functional storage (tags, states, LRU order,
 * version stamps for the coherence checker, and the LLC's directory
 * fields); all timing is charged by the caches that own an array.
 *
 * Storage is structure-of-arrays: each per-line field lives in its own
 * packed vector, so the hot way-scans touch only the field they need.
 * With 8-byte tags and 8-way sets, find()'s scan of one set reads a
 * single 64-byte cache line of host memory instead of striding eight
 * 64-byte line records; victimFor()'s LRU scan does the same over the
 * packed lastUse array. Callers address a slot through the LineRef
 * handle instead of a pointer to a line struct.
 */

#ifndef COHMELEON_MEM_CACHE_ARRAY_HH
#define COHMELEON_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cohmeleon::mem
{

/** MESI line state (private caches); the LLC uses Valid/Invalid plus
 *  its directory fields. */
enum class CState : std::uint8_t
{
    kInvalid,
    kShared,
    kExclusive,
    kModified,
};

const char *toString(CState s);

class CacheArray;

/**
 * Handle to one line slot of a CacheArray.
 *
 * Accessors return references into the packed per-field arrays, so
 * call sites read and assign fields exactly as they did on the old
 * line struct (`line.state() = CState::kShared`). A default-constructed
 * LineRef is "null" (miss); test with `if (line)`.
 *
 * Validity is defined by the tag: a slot holds a line iff its tag is
 * not the invalid sentinel. Invalidation must go through clear() (or
 * CacheArray::invalidateAll()) so the tag and the MESI state stay in
 * sync; fills assign lineAddr() and state() directly.
 */
class LineRef
{
  public:
    LineRef() = default;
    LineRef(CacheArray *array, std::size_t index)
        : array_(array), index_(index)
    {
    }

    explicit operator bool() const { return array_ != nullptr; }
    bool operator==(const LineRef &) const = default;

    std::size_t index() const { return index_; }

    bool valid() const;

    Addr &lineAddr();
    Addr lineAddr() const;
    CState &state();
    CState state() const;
    std::uint8_t &dirty();
    bool dirty() const;
    std::uint64_t &version();
    std::uint64_t version() const;
    std::uint64_t lastUse() const;
    std::uint64_t &sharers();
    std::uint64_t sharers() const;
    std::int16_t &owner();
    int owner() const;

    /** Reset to an empty slot (also forgets the LRU tick, so a
     *  recycled slot cannot inherit stale replacement history). */
    void clear();

  private:
    CacheArray *array_ = nullptr;
    std::size_t index_ = 0;
};

/** Fixed-geometry set-associative array with LRU replacement. */
class CacheArray
{
  public:
    /** Tag stored in empty slots; no real line-aligned address in the
     *  partitioned space can equal it. */
    static constexpr Addr kInvalidTag = ~Addr{0};

    /**
     * @param sizeBytes total capacity (must be sets*ways*64)
     * @param ways associativity
     */
    CacheArray(std::string name, std::uint64_t sizeBytes, unsigned ways);

    /** Find the line holding @p lineAddr. @return null ref on miss. */
    LineRef
    find(Addr lineAddr)
    {
        const std::size_t base =
            static_cast<std::size_t>(setOf(lineAddr)) * ways_;
        const Addr *tags = tags_.data() + base;
        for (unsigned w = 0; w < ways_; ++w) {
            if (tags[w] == lineAddr)
                return LineRef(this, base + w);
        }
        return {};
    }

    /**
     * Choose a victim slot for @p lineAddr: an invalid way if one
     * exists, otherwise the LRU valid way. The caller is responsible
     * for handling the victim's contents before overwriting.
     */
    LineRef
    victimFor(Addr lineAddr)
    {
        const std::size_t base =
            static_cast<std::size_t>(setOf(lineAddr)) * ways_;
        const Addr *tags = tags_.data() + base;
        for (unsigned w = 0; w < ways_; ++w) {
            if (tags[w] == kInvalidTag)
                return LineRef(this, base + w);
        }
        const std::uint64_t *lru = lastUse_.data() + base;
        unsigned victim = 0;
        for (unsigned w = 1; w < ways_; ++w) {
            if (lru[w] < lru[victim])
                victim = w;
        }
        return LineRef(this, base + victim);
    }

    /** Refresh LRU position of @p line. */
    void touch(LineRef line) { lastUse_[line.index()] = ++lruTick_; }

    /** Apply @p fn to every valid line (flush walks, checkers). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (std::size_t i = 0; i < tags_.size(); ++i) {
            if (tags_[i] != kInvalidTag)
                fn(LineRef(this, i));
        }
    }

    /** Invalidate every line (does not write anything back). */
    void invalidateAll();

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    std::uint64_t sizeBytes() const { return sizeBytes_; }
    std::uint64_t lineCapacity() const
    {
        return static_cast<std::uint64_t>(sets_) * ways_;
    }

    /** Number of currently valid lines. */
    std::uint64_t validLines() const;

    const std::string &name() const { return name_; }

  private:
    friend class LineRef;

    unsigned
    setOf(Addr lineAddr) const
    {
        return static_cast<unsigned>(lineIndex(lineAddr)) & (sets_ - 1);
    }

    std::string name_;
    std::uint64_t sizeBytes_;
    unsigned sets_;
    unsigned ways_;

    // Structure-of-arrays line storage, all indexed [set * ways + way].
    std::vector<Addr> tags_;            ///< kInvalidTag when empty
    std::vector<CState> states_;
    std::vector<std::uint8_t> dirty_;   ///< LLC: needs DRAM writeback
    std::vector<std::uint64_t> versions_; ///< coherence-checker stamps
    std::vector<std::uint64_t> lastUse_;  ///< LRU ticks
    std::vector<std::uint64_t> sharers_;  ///< LLC directory bitmasks
    std::vector<std::int16_t> owners_;    ///< LLC directory owners

    std::uint64_t lruTick_ = 0;
};

// ------------------------------------------------ LineRef accessors

inline bool
LineRef::valid() const
{
    return array_->tags_[index_] != CacheArray::kInvalidTag;
}

inline Addr &
LineRef::lineAddr()
{
    return array_->tags_[index_];
}

inline Addr
LineRef::lineAddr() const
{
    return array_->tags_[index_];
}

inline CState &
LineRef::state()
{
    return array_->states_[index_];
}

inline CState
LineRef::state() const
{
    return array_->states_[index_];
}

inline std::uint8_t &
LineRef::dirty()
{
    return array_->dirty_[index_];
}

inline bool
LineRef::dirty() const
{
    return array_->dirty_[index_] != 0;
}

inline std::uint64_t &
LineRef::version()
{
    return array_->versions_[index_];
}

inline std::uint64_t
LineRef::version() const
{
    return array_->versions_[index_];
}

inline std::uint64_t
LineRef::lastUse() const
{
    return array_->lastUse_[index_];
}

inline std::uint64_t &
LineRef::sharers()
{
    return array_->sharers_[index_];
}

inline std::uint64_t
LineRef::sharers() const
{
    return array_->sharers_[index_];
}

inline std::int16_t &
LineRef::owner()
{
    return array_->owners_[index_];
}

inline int
LineRef::owner() const
{
    return array_->owners_[index_];
}

inline void
LineRef::clear()
{
    array_->tags_[index_] = CacheArray::kInvalidTag;
    array_->states_[index_] = CState::kInvalid;
    array_->dirty_[index_] = 0;
    array_->versions_[index_] = 0;
    array_->lastUse_[index_] = 0;
    array_->sharers_[index_] = 0;
    array_->owners_[index_] = -1;
}

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_CACHE_ARRAY_HH

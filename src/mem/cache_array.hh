/**
 * @file
 * Set-associative cache array with MESI metadata and directory
 * side-information, shared by the private L2s and the LLC slices.
 *
 * The array is purely functional storage (tags, states, LRU order,
 * version stamps for the coherence checker, and the LLC's directory
 * fields); all timing is charged by the caches that own an array.
 */

#ifndef COHMELEON_MEM_CACHE_ARRAY_HH
#define COHMELEON_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cohmeleon::mem
{

/** MESI line state (private caches); the LLC uses Valid/Invalid plus
 *  its directory fields. */
enum class CState : std::uint8_t
{
    kInvalid,
    kShared,
    kExclusive,
    kModified,
};

const char *toString(CState s);

/** One cache line's metadata. */
struct CacheLine
{
    Addr lineAddr = 0;          ///< line-aligned address (tag)
    CState state = CState::kInvalid;
    bool dirty = false;         ///< LLC: needs DRAM writeback
    std::uint64_t version = 0;  ///< coherence-checker stamp
    std::uint64_t lastUse = 0;  ///< LRU tick
    std::uint64_t sharers = 0;  ///< LLC directory: bitmask of L2 ids
    std::int16_t owner = -1;    ///< LLC directory: L2 id with E/M copy

    bool valid() const { return state != CState::kInvalid; }

    /** Reset to an empty slot. */
    void
    clear()
    {
        lineAddr = 0;
        state = CState::kInvalid;
        dirty = false;
        version = 0;
        sharers = 0;
        owner = -1;
    }
};

/** Fixed-geometry set-associative array with LRU replacement. */
class CacheArray
{
  public:
    /**
     * @param sizeBytes total capacity (must be sets*ways*64)
     * @param ways associativity
     */
    CacheArray(std::string name, std::uint64_t sizeBytes, unsigned ways);

    /** Find the line holding @p lineAddr. @return nullptr on miss. */
    CacheLine *find(Addr lineAddr);
    const CacheLine *find(Addr lineAddr) const;

    /**
     * Choose a victim slot for @p lineAddr: an invalid way if one
     * exists, otherwise the LRU valid way. The caller is responsible
     * for handling the victim's contents before overwriting.
     */
    CacheLine *victimFor(Addr lineAddr);

    /** Refresh LRU position of @p line. */
    void touch(CacheLine *line);

    /** Apply @p fn to every valid line (flush walks, checkers). */
    void forEachValid(const std::function<void(CacheLine &)> &fn);

    /** Invalidate every line (does not write anything back). */
    void invalidateAll();

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    std::uint64_t sizeBytes() const { return sizeBytes_; }
    std::uint64_t lineCapacity() const
    {
        return static_cast<std::uint64_t>(sets_) * ways_;
    }

    /** Number of currently valid lines. */
    std::uint64_t validLines() const;

    const std::string &name() const { return name_; }

  private:
    unsigned setOf(Addr lineAddr) const;

    std::string name_;
    std::uint64_t sizeBytes_;
    unsigned sets_;
    unsigned ways_;
    std::vector<CacheLine> lines_; ///< [set * ways + way]
    std::uint64_t lruTick_ = 0;
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_CACHE_ARRAY_HH

/**
 * @file
 * Result/parameter types shared between the private caches, the LLC
 * slices, and the MemorySystem facade (split out to break the include
 * cycle between those headers).
 */

#ifndef COHMELEON_MEM_MEM_TYPES_HH
#define COHMELEON_MEM_MEM_TYPES_HH

#include <cstdint>

#include "mem/dram.hh"
#include "sim/types.hh"

namespace cohmeleon::mem
{

/** Timing constants of the cache hierarchy. */
struct MemTimingParams
{
    Cycles l2HitLatency = 2;   ///< private-cache hit latency
    Cycles l2PortOccupancy = 1; ///< per-access slot on an L2 port
    Cycles l2WalkPerLine = 1;  ///< flush-walk cost per line slot
    Cycles llcLatency = 8;     ///< LLC lookup latency
    Cycles llcOccupancy = 2;   ///< per-access slot on an LLC slice port
    Cycles llcWalkPerLine = 1; ///< LLC flush-walk cost per line slot
    unsigned reqBytes = 8;     ///< control-message payload bytes
    DramParams dram;           ///< per-channel DRAM timing
};

/** Outcome of a memory operation that may touch DRAM. */
struct AccessResult
{
    Cycles done = 0;            ///< completion time
    unsigned dramAccesses = 0;  ///< off-chip line transfers caused
    bool llcHit = false;        ///< served from on-chip state
};

/** Accumulated outcome of one batched DMA burst (all lines). */
struct BurstTotals
{
    Cycles done = 0;               ///< completion of the last line
    std::uint64_t dramAccesses = 0; ///< off-chip line transfers caused
    std::uint64_t llcHits = 0;      ///< lines served with no DRAM access
};

/** Outcome of an L2 miss fill from the LLC. */
struct FillResult
{
    Cycles done = 0;           ///< data-arrival time at the L2
    std::uint64_t version = 0; ///< version stamp of the filled data
    bool exclusive = false;    ///< whether E (vs. S) was granted
    unsigned dramAccesses = 0; ///< off-chip line transfers caused
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_MEM_TYPES_HH

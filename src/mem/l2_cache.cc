#include "mem/l2_cache.hh"

#include <algorithm>

#include "mem/memory_system.hh"
#include "sim/logging.hh"

namespace cohmeleon::mem
{

L2Cache::L2Cache(unsigned id, std::string name, TileId tile,
                 std::uint64_t sizeBytes, unsigned ways, MemorySystem &ms)
    : id_(id), name_(std::move(name)), tile_(tile), ms_(ms),
      array_(name_ + ".array", sizeBytes, ways), port_(name_ + ".port")
{
}

Cycles
L2Cache::evict(Cycles now, LineRef victim)
{
    if (!victim.valid())
        return now;
    Cycles done = now;
    if (victim.state() == CState::kModified) {
        ++writebacks_;
        done = ms_.putWriteback(now, victim.lineAddr(), *this,
                                victim.version());
    } else {
        ms_.putClean(victim.lineAddr(), *this);
    }
    victim.clear();
    return done;
}

AccessResult
L2Cache::read(Cycles now, Addr lineAddr)
{
    const auto &t = ms_.timing();
    const Cycles start = port_.acquire(now, t.l2PortOccupancy);

    if (LineRef line = array_.find(lineAddr)) {
        ++hits_;
        array_.touch(line);
        ms_.versions().checkRead(lineAddr, line.version(),
                                 name_.c_str());
        return {start + t.l2HitLatency, 0, true};
    }

    ++misses_;
    LineRef slot = array_.victimFor(lineAddr);
    const Cycles wbDone = evict(start, slot);
    const FillResult fill = ms_.getS(start, lineAddr, *this);

    slot.lineAddr() = lineAddr;
    slot.state() = fill.exclusive ? CState::kExclusive : CState::kShared;
    slot.dirty() = 0;
    slot.version() = fill.version;
    slot.sharers() = 0;
    slot.owner() = -1;
    array_.touch(slot);

    ms_.versions().checkRead(lineAddr, fill.version, name_.c_str());
    return {std::max(fill.done, wbDone), fill.dramAccesses, false};
}

AccessResult
L2Cache::write(Cycles now, Addr lineAddr)
{
    const auto &t = ms_.timing();
    const Cycles start = port_.acquire(now, t.l2PortOccupancy);

    if (LineRef line = array_.find(lineAddr)) {
        array_.touch(line);
        if (line.state() == CState::kModified ||
            line.state() == CState::kExclusive) {
            // Silent E->M upgrade.
            ++hits_;
            line.state() = CState::kModified;
            line.version() = ms_.versions().bumpLatest(lineAddr);
            return {start + t.l2HitLatency, 0, true};
        }
        // Shared: upgrade through the directory.
        ++misses_;
        const FillResult fill = ms_.getM(start, lineAddr, *this);
        line.state() = CState::kModified;
        line.version() = ms_.versions().bumpLatest(lineAddr);
        return {fill.done, fill.dramAccesses, false};
    }

    ++misses_;
    LineRef slot = array_.victimFor(lineAddr);
    const Cycles wbDone = evict(start, slot);
    const FillResult fill = ms_.getM(start, lineAddr, *this);

    slot.lineAddr() = lineAddr;
    slot.state() = CState::kModified;
    slot.dirty() = 0;
    slot.sharers() = 0;
    slot.owner() = -1;
    slot.version() = ms_.versions().bumpLatest(lineAddr);
    array_.touch(slot);

    return {std::max(fill.done, wbDone), fill.dramAccesses, false};
}

AccessResult
L2Cache::flushAll(Cycles now)
{
    const auto &t = ms_.timing();
    const Cycles walkCycles = array_.lineCapacity() * t.l2WalkPerLine;
    const Cycles issue = port_.acquire(now, walkCycles);
    Cycles done = issue + walkCycles;

    array_.forEachValid([&](LineRef line) {
        if (line.state() == CState::kModified) {
            ++writebacks_;
            done = std::max(done,
                            ms_.putWriteback(issue, line.lineAddr(),
                                             *this, line.version()));
        } else {
            ms_.putClean(line.lineAddr(), *this);
        }
    });
    array_.invalidateAll();
    return {done, 0, false};
}

L2Cache::RecallResult
L2Cache::recall(Addr lineAddr, bool invalidate)
{
    LineRef line = array_.find(lineAddr);
    if (!line)
        return {};

    ++recallsServed_;
    RecallResult res;
    res.present = true;
    res.dirty = line.state() == CState::kModified;
    res.version = line.version();

    if (invalidate) {
        line.clear();
    } else {
        line.state() = CState::kShared;
        line.dirty() = 0;
    }
    return res;
}

void
L2Cache::reset()
{
    array_.invalidateAll();
    port_.reset();
    hits_ = 0;
    misses_ = 0;
    writebacks_ = 0;
    recallsServed_ = 0;
}

} // namespace cohmeleon::mem

#include "mem/addr_map.hh"

#include "sim/logging.hh"

namespace cohmeleon::mem
{

AddressMap::AddressMap(unsigned numPartitions, std::uint64_t partitionBytes)
    : numPartitions_(numPartitions), partitionBytes_(partitionBytes)
{
    fatalIf(numPartitions == 0, "need at least one memory partition");
    fatalIf(partitionBytes == 0 || partitionBytes % kLineBytes != 0,
            "partition size must be a positive multiple of the line size");
    partShift_ = powerOfTwoShift(partitionBytes);
}

unsigned
AddressMap::partitionOf(Addr addr) const
{
    panic_if(!contains(addr), "address ", addr, " outside memory space");
    return partitionOfUnchecked(addr);
}

Addr
AddressMap::base(unsigned p) const
{
    panic_if(p >= numPartitions_, "partition ", p, " out of range");
    return static_cast<Addr>(p) * partitionBytes_;
}

} // namespace cohmeleon::mem

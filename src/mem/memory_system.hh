/**
 * @file
 * Facade over the distributed cache hierarchy of one SoC: the private
 * L2 caches, the LLC slices with their DRAM controllers, the address
 * partitioning, the NoC charging for protocol messages, and the
 * version-based coherence checker.
 *
 * Every protocol interaction between components flows through this
 * class, which makes the message/NoC accounting uniform and gives the
 * tests a single seam to observe.
 */

#ifndef COHMELEON_MEM_MEMORY_SYSTEM_HH
#define COHMELEON_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/addr_map.hh"
#include "mem/dram.hh"
#include "mem/l2_cache.hh"
#include "mem/llc.hh"
#include "mem/mem_types.hh"
#include "mem/version_tracker.hh"
#include "noc/noc_model.hh"
#include "sim/types.hh"

namespace cohmeleon::mem
{

/** The assembled memory hierarchy of one SoC. */
class MemorySystem
{
  public:
    /**
     * @param memTiles tile id hosting each partition's memory tile
     *        (one per AddressMap partition, same order)
     */
    MemorySystem(noc::NocModel &noc, const AddressMap &map,
                 const MemTimingParams &timing,
                 std::uint64_t llcSliceBytes, unsigned llcWays,
                 std::vector<TileId> memTiles);

    /** Register a private cache. @return the new cache (stable ref). */
    L2Cache &addL2(const std::string &name, TileId tile,
                   std::uint64_t sizeBytes, unsigned ways);

    // --- Routing -------------------------------------------------------
    unsigned numPartitions() const { return map_.numPartitions(); }
    LlcPartition &slice(unsigned p) { return *slices_[p]; }
    DramController &dram(unsigned p) { return *drams_[p]; }
    LlcPartition &sliceFor(Addr a) { return slice(map_.partitionOf(a)); }
    DramController &dramFor(Addr a) { return dram(map_.partitionOf(a)); }
    TileId memTile(unsigned p) const { return memTiles_[p]; }
    const AddressMap &map() const { return map_; }

    // --- L2 miss paths (called by L2Cache) -----------------------------
    FillResult getS(Cycles now, Addr lineAddr, L2Cache &req);
    FillResult getM(Cycles now, Addr lineAddr, L2Cache &req);
    Cycles putWriteback(Cycles now, Addr lineAddr, L2Cache &from,
                        std::uint64_t version);
    void putClean(Addr lineAddr, L2Cache &from);

    // --- DMA paths (called by the coherence-mode bridge) ---------------
    /** LLC-routed DMA (LLC-coherent when !coherent, coherent-DMA
     *  when coherent). */
    AccessResult dmaRead(Cycles now, Addr lineAddr, bool coherent,
                         TileId reqTile);
    AccessResult dmaWrite(Cycles now, Addr lineAddr, bool coherent,
                          TileId reqTile);

    /** Cache-bypassing DRAM access (non-coherent DMA). */
    AccessResult dramRead(Cycles now, Addr lineAddr, TileId reqTile);
    AccessResult dramWrite(Cycles now, Addr lineAddr, TileId reqTile);

    // --- Batched DMA paths (called by the burst engine) ----------------
    //
    // Each takes the whole burst's pre-resolved line addresses, splits
    // them into maximal runs of consecutive lines homed on the same
    // partition, and charges NoC routes, DRAM timing, and LLC lookups
    // per run instead of per line. Because runs preserve the line
    // order and every hardware server sees the same acquire sequence,
    // results (timing, statistics, directory state, checker stamps)
    // are bit-identical to issuing the per-line calls in a loop.

    /** Batched dmaRead/dmaWrite (LLC-routed DMA), all lines at @p now. */
    BurstTotals dmaBurst(Cycles now, const Addr *addrs, unsigned n,
                         bool coherent, bool isWrite, TileId reqTile);

    /** Batched dramRead/dramWrite (cache-bypassing DMA). */
    BurstTotals dramBurst(Cycles now, const Addr *addrs, unsigned n,
                          bool isWrite, TileId reqTile);

    // --- Software-managed flushes (called by the runtime) --------------
    /** Flush the given private caches; all registered ones if empty. */
    AccessResult flushL2s(Cycles now,
                          const std::vector<L2Cache *> &which = {});
    /** Flush every LLC slice to DRAM. */
    AccessResult flushLlc(Cycles now);

    // --- Infrastructure -------------------------------------------------
    noc::NocModel &noc() { return noc_; }
    const MemTimingParams &timing() const { return timing_; }
    VersionTracker &versions() { return versions_; }
    L2Cache &l2(unsigned id) { return *l2s_[id]; }
    unsigned numL2s() const { return static_cast<unsigned>(l2s_.size()); }

    /** Sum of off-chip accesses over all controllers. */
    std::uint64_t totalDramAccesses() const;

    /**
     * Audit the directory invariants:
     *  - inclusion: every valid private-cache line is present in its
     *    home LLC slice;
     *  - ownership: an E/M private line is registered as the LLC
     *    line's owner; an S line is in the sharer set;
     *  - no dangling directory bits: registered owners/sharers
     *    actually hold the line.
     *
     * @return human-readable descriptions of violations (empty when
     *         the hierarchy is consistent)
     */
    std::vector<std::string> checkDirectoryInvariants();

    /** Invalidate all caches, clear counters/links (new experiment). */
    void reset();

  private:
    noc::NocModel &noc_;
    const AddressMap &map_;
    MemTimingParams timing_;
    std::vector<TileId> memTiles_;
    std::vector<std::unique_ptr<DramController>> drams_;
    std::vector<std::unique_ptr<LlcPartition>> slices_;
    std::vector<std::unique_ptr<L2Cache>> l2s_;
    VersionTracker versions_;

    // Reusable per-run scratch for the batch DMA paths (the simulator
    // is single-threaded per SoC, so one set suffices; reuse keeps the
    // burst hot path allocation-free in steady state).
    std::vector<Cycles> batchDone_;
    std::vector<AccessResult> batchResults_;
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_MEMORY_SYSTEM_HH

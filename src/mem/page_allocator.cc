#include "mem/page_allocator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cohmeleon::mem
{

Allocation::Allocation(std::vector<Addr> pageBases, std::uint64_t bytes,
                       std::uint64_t pageBytes)
    : pageBases_(std::move(pageBases)), bytes_(bytes),
      pageBytes_(pageBytes), pageShift_(powerOfTwoShift(pageBytes))
{
}

Addr
Allocation::addrOfOffset(std::uint64_t offset) const
{
    panic_if(offset >= bytes_, "offset ", offset, " beyond allocation of ",
             bytes_, " bytes");
    const std::uint64_t page = offset / pageBytes_;
    return pageBases_[page] + (offset % pageBytes_);
}

Addr
Allocation::addrOfLine(std::uint64_t line) const
{
    return addrOfOffset(line * kLineBytes);
}

void
Allocation::resolveLines(std::uint64_t startLine, unsigned count,
                         unsigned strideLines,
                         std::vector<Addr> &out) const
{
    const std::uint64_t total = lines();
    panic_if(total == 0, "burst on an empty allocation");
    out.resize(count);

    // Reduce once so the loop wraps with a compare-and-subtract: for
    // li, stride < total, (li + stride) mod total needs at most one
    // subtraction.
    std::uint64_t li = startLine % total;
    const std::uint64_t stride = strideLines % total;

    const Addr *bases = pageBases_.data();
    if (pageShift_ != 0) {
        const std::uint64_t pageMask = pageBytes_ - 1;
        for (unsigned i = 0; i < count; ++i) {
            const std::uint64_t offset = li << kLineShift;
            out[i] = bases[offset >> pageShift_] + (offset & pageMask);
            li += stride;
            if (li >= total)
                li -= total;
        }
    } else {
        for (unsigned i = 0; i < count; ++i) {
            const std::uint64_t offset = li << kLineShift;
            out[i] = bases[offset / pageBytes_] + (offset % pageBytes_);
            li += stride;
            if (li >= total)
                li -= total;
        }
    }
}

std::uint64_t
Allocation::footprintOnPartition(const AddressMap &map, unsigned p) const
{
    std::uint64_t total = 0;
    std::uint64_t remaining = bytes_;
    for (Addr base : pageBases_) {
        const std::uint64_t inPage = std::min(remaining, pageBytes_);
        if (map.partitionOf(base) == p)
            total += inPage;
        remaining -= inPage;
    }
    return total;
}

std::vector<unsigned>
Allocation::partitionsUsed(const AddressMap &map) const
{
    std::vector<unsigned> parts;
    std::uint64_t remaining = bytes_;
    for (Addr base : pageBases_) {
        if (remaining == 0)
            break;
        const unsigned p = map.partitionOf(base);
        if (std::find(parts.begin(), parts.end(), p) == parts.end())
            parts.push_back(p);
        remaining -= std::min(remaining, pageBytes_);
    }
    std::sort(parts.begin(), parts.end());
    return parts;
}

PageAllocator::PageAllocator(const AddressMap &map, std::uint64_t pageBytes)
    : map_(map), pageBytes_(pageBytes)
{
    fatalIf(pageBytes == 0 || pageBytes % kLineBytes != 0,
            "page size must be a positive multiple of the line size");
    fatalIf(map.partitionBytes() % pageBytes != 0,
            "partition size must be a multiple of the page size");

    freeLists_.resize(map.numPartitions());
    const std::uint64_t pagesPerPartition =
        map.partitionBytes() / pageBytes;
    for (unsigned p = 0; p < map.numPartitions(); ++p) {
        auto &list = freeLists_[p];
        list.reserve(pagesPerPartition);
        // Push in reverse so allocation proceeds from the partition base.
        for (std::uint64_t i = pagesPerPartition; i-- > 0;)
            list.push_back(map.base(p) + i * pageBytes);
    }
}

Addr
PageAllocator::takePage(unsigned partition)
{
    auto &list = freeLists_[partition];
    panic_if(list.empty(), "takePage on exhausted partition");
    const Addr page = list.back();
    list.pop_back();
    return page;
}

Allocation
PageAllocator::allocate(std::uint64_t bytes, StripePolicy policy)
{
    fatalIf(bytes == 0, "cannot allocate zero bytes");
    const std::uint64_t pages = (bytes + pageBytes_ - 1) / pageBytes_;
    fatalIf(pages > freePages(), "out of simulated DRAM: need ", pages,
            " pages, have ", freePages());

    std::vector<Addr> bases;
    bases.reserve(pages);

    if (policy == StripePolicy::kSingle) {
        // Pick the partition with the most free pages that can hold it
        // all; fall back to round-robin when none can.
        unsigned best = 0;
        std::uint64_t bestFree = 0;
        for (unsigned p = 0; p < freeLists_.size(); ++p) {
            if (freeLists_[p].size() > bestFree) {
                bestFree = freeLists_[p].size();
                best = p;
            }
        }
        if (bestFree >= pages) {
            for (std::uint64_t i = 0; i < pages; ++i)
                bases.push_back(takePage(best));
            return Allocation(std::move(bases), bytes, pageBytes_);
        }
    }

    // Round-robin striping, skipping exhausted partitions.
    for (std::uint64_t i = 0; i < pages; ++i) {
        unsigned tried = 0;
        while (freeLists_[rrCursor_].empty()) {
            rrCursor_ = (rrCursor_ + 1) % freeLists_.size();
            panic_if(++tried > freeLists_.size(),
                     "free page accounting is inconsistent");
        }
        bases.push_back(takePage(rrCursor_));
        rrCursor_ = (rrCursor_ + 1) % freeLists_.size();
    }
    return Allocation(std::move(bases), bytes, pageBytes_);
}

void
PageAllocator::free(const Allocation &alloc)
{
    for (Addr base : alloc.pageBases())
        freeLists_[map_.partitionOf(base)].push_back(base);
}

std::uint64_t
PageAllocator::freePages() const
{
    std::uint64_t total = 0;
    for (const auto &list : freeLists_)
        total += list.size();
    return total;
}

std::uint64_t
PageAllocator::freePagesOn(unsigned partition) const
{
    return freeLists_[partition].size();
}

} // namespace cohmeleon::mem

/**
 * @file
 * Partitioned global address space.
 *
 * As in the paper's SoCs, the LLC is split into slices, each slice
 * "corresponding to a contiguous partition of the global address
 * space and equipped with a dedicated memory controller to access
 * that partition". The AddressMap owns that partitioning.
 */

#ifndef COHMELEON_MEM_ADDR_MAP_HH
#define COHMELEON_MEM_ADDR_MAP_HH

#include <cstdint>

#include "sim/types.hh"

namespace cohmeleon::mem
{

/** Contiguous-range mapping from addresses to memory partitions. */
class AddressMap
{
  public:
    /**
     * @param numPartitions number of memory tiles (LLC slice + DDR)
     * @param partitionBytes bytes of DRAM behind each memory tile
     */
    AddressMap(unsigned numPartitions, std::uint64_t partitionBytes);

    unsigned numPartitions() const { return numPartitions_; }
    std::uint64_t partitionBytes() const { return partitionBytes_; }
    std::uint64_t totalBytes() const
    {
        return static_cast<std::uint64_t>(numPartitions_) * partitionBytes_;
    }

    /** Partition that services @p addr. @pre addr < totalBytes() */
    unsigned partitionOf(Addr addr) const;

    /** First address of partition @p p. */
    Addr base(unsigned p) const;

    bool contains(Addr addr) const { return addr < totalBytes(); }

  private:
    unsigned numPartitions_;
    std::uint64_t partitionBytes_;
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_ADDR_MAP_HH

/**
 * @file
 * Partitioned global address space.
 *
 * As in the paper's SoCs, the LLC is split into slices, each slice
 * "corresponding to a contiguous partition of the global address
 * space and equipped with a dedicated memory controller to access
 * that partition". The AddressMap owns that partitioning.
 */

#ifndef COHMELEON_MEM_ADDR_MAP_HH
#define COHMELEON_MEM_ADDR_MAP_HH

#include <cstdint>

#include "sim/types.hh"

namespace cohmeleon::mem
{

/** Contiguous-range mapping from addresses to memory partitions. */
class AddressMap
{
  public:
    /**
     * @param numPartitions number of memory tiles (LLC slice + DDR)
     * @param partitionBytes bytes of DRAM behind each memory tile
     */
    AddressMap(unsigned numPartitions, std::uint64_t partitionBytes);

    unsigned numPartitions() const { return numPartitions_; }
    std::uint64_t partitionBytes() const { return partitionBytes_; }
    std::uint64_t totalBytes() const
    {
        return static_cast<std::uint64_t>(numPartitions_) * partitionBytes_;
    }

    /** Partition that services @p addr. @pre addr < totalBytes() */
    unsigned partitionOf(Addr addr) const;

    /**
     * partitionOf() without the range audit, for batch loops that
     * have already validated the whole access vector (addresses from
     * a live Allocation are in range by construction). A shift when
     * the partition size is a power of two, one division otherwise.
     */
    unsigned
    partitionOfUnchecked(Addr addr) const
    {
        return static_cast<unsigned>(partShift_ != 0
                                         ? addr >> partShift_
                                         : addr / partitionBytes_);
    }

    /** First address of partition @p p. */
    Addr base(unsigned p) const;

    bool contains(Addr addr) const { return addr < totalBytes(); }

  private:
    unsigned numPartitions_;
    std::uint64_t partitionBytes_;
    unsigned partShift_ = 0; ///< log2(partitionBytes) if a power of two
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_ADDR_MAP_HH

#include "mem/llc.hh"

#include <algorithm>

#include "mem/l2_cache.hh"
#include "mem/memory_system.hh"
#include "sim/logging.hh"

namespace cohmeleon::mem
{

namespace
{

std::uint64_t
bitOf(unsigned id)
{
    return std::uint64_t{1} << id;
}

} // namespace

LlcPartition::LlcPartition(unsigned index, std::string name,
                           TileId memTile, std::uint64_t sizeBytes,
                           unsigned ways, DramController &dram,
                           MemorySystem &ms)
    : index_(index), name_(std::move(name)), memTile_(memTile), ms_(ms),
      dram_(dram), array_(name_ + ".array", sizeBytes, ways),
      port_(name_ + ".port")
{
}

Cycles
LlcPartition::recallOwner(Cycles now, LineRef line, bool invalidate)
{
    panic_if(line.owner() < 0, "recallOwner with no owner");
    ++recalls_;
    const auto &t = ms_.timing();
    L2Cache &owner = ms_.l2(static_cast<unsigned>(line.owner()));

    const Cycles fwdArrive = ms_.noc().transfer(
        now, memTile_, owner.tile(), noc::Plane::kCohFwd, t.reqBytes);
    const Cycles snoopStart =
        owner.port().acquire(fwdArrive, t.l2PortOccupancy);
    const auto r = owner.recall(line.lineAddr(), invalidate);

    const unsigned rspBytes =
        (r.present && r.dirty) ? kLineBytes : t.reqBytes;
    const Cycles dataBack =
        ms_.noc().transfer(snoopStart + t.l2HitLatency, owner.tile(),
                           memTile_, noc::Plane::kCohRsp, rspBytes);

    if (r.present && r.dirty) {
        line.version() = r.version;
        line.dirty() = 1;
    }
    const int prevOwner = line.owner();
    line.owner() = -1;
    if (!invalidate && r.present)
        line.sharers() |= bitOf(static_cast<unsigned>(prevOwner));
    return dataBack;
}

Cycles
LlcPartition::invalidateSharers(Cycles now, LineRef line, int exceptId)
{
    const auto &t = ms_.timing();
    Cycles done = now;
    std::uint64_t mask = line.sharers();
    while (mask) {
        const unsigned id =
            static_cast<unsigned>(__builtin_ctzll(mask));
        mask &= mask - 1;
        if (exceptId >= 0 && id == static_cast<unsigned>(exceptId))
            continue;
        ++invalidations_;
        L2Cache &l2 = ms_.l2(id);
        const Cycles fwdArrive = ms_.noc().transfer(
            now, memTile_, l2.tile(), noc::Plane::kCohFwd, t.reqBytes);
        const Cycles snoopStart =
            l2.port().acquire(fwdArrive, t.l2PortOccupancy);
        l2.recall(line.lineAddr(), true);
        const Cycles ack = ms_.noc().transfer(
            snoopStart + t.l2HitLatency, l2.tile(), memTile_,
            noc::Plane::kCohRsp, t.reqBytes);
        done = std::max(done, ack);
    }
    line.sharers() =
        exceptId >= 0
            ? (line.sharers() & bitOf(static_cast<unsigned>(exceptId)))
            : 0;
    return done;
}

LineRef
LlcPartition::allocateSlot(Cycles now, Addr lineAddr, Cycles &ready)
{
    LineRef victim = array_.victimFor(lineAddr);
    ready = now;
    if (victim.valid()) {
        ++evictions_;
        // Inclusive LLC: private copies must go before the slot can be
        // reused.
        if (victim.owner() >= 0)
            ready = recallOwner(ready, victim, true);
        if (victim.sharers())
            ready = std::max(ready,
                             invalidateSharers(ready, victim, -1));
        if (victim.dirty()) {
            // Writeback drains through a write buffer: the channel
            // bandwidth is consumed but the fill need not wait.
            dram_.access(ready, victim.lineAddr(), true);
            ms_.versions().setDramVersion(victim.lineAddr(),
                                          victim.version());
        }
        victim.clear();
    }
    return victim;
}

FillResult
LlcPartition::getS(Cycles now, Addr lineAddr, L2Cache &req)
{
    const auto &t = ms_.timing();
    const Cycles lookupStart = port_.acquire(now, t.llcOccupancy);
    Cycles ready = lookupStart + t.llcLatency;

    FillResult res;
    LineRef line = array_.find(lineAddr);
    if (line) {
        ++hits_;
        if (line.owner() == static_cast<int>(req.id())) {
            // Stale ownership (requester lost the line silently).
            line.owner() = -1;
        }
        if (line.owner() >= 0)
            ready = recallOwner(ready, line, false);
        const bool exclusive = line.sharers() == 0 && line.owner() < 0;
        if (exclusive)
            line.owner() = static_cast<int>(req.id());
        else
            line.sharers() |= bitOf(req.id());
        array_.touch(line);
        res.version = line.version();
        res.exclusive = exclusive;
    } else {
        ++misses_;
        Cycles slotReady = ready;
        LineRef slot = allocateSlot(ready, lineAddr, slotReady);
        const Cycles dramDone = dram_.access(ready, lineAddr, false);
        ++res.dramAccesses;
        slot.lineAddr() = lineAddr;
        slot.state() = CState::kShared; // "valid" for the LLC
        slot.dirty() = 0;
        slot.version() = ms_.versions().dramVersion(lineAddr);
        slot.sharers() = 0;
        slot.owner() = static_cast<int>(req.id());
        array_.touch(slot);
        ready = std::max(dramDone, slotReady);
        res.version = slot.version();
        res.exclusive = true;
    }

    res.done = ms_.noc().transfer(ready, memTile_, req.tile(),
                                  noc::Plane::kCohRsp, kLineBytes);
    return res;
}

FillResult
LlcPartition::getM(Cycles now, Addr lineAddr, L2Cache &req)
{
    const auto &t = ms_.timing();
    const Cycles lookupStart = port_.acquire(now, t.llcOccupancy);
    Cycles ready = lookupStart + t.llcLatency;

    FillResult res;
    LineRef line = array_.find(lineAddr);
    if (line) {
        ++hits_;
        if (line.owner() == static_cast<int>(req.id()))
            line.owner() = -1;
        if (line.owner() >= 0)
            ready = recallOwner(ready, line, true);
        ready = std::max(
            ready,
            invalidateSharers(ready, line, static_cast<int>(req.id())));
        line.sharers() = 0;
        line.owner() = static_cast<int>(req.id());
        array_.touch(line);
        res.version = line.version();
    } else {
        ++misses_;
        Cycles slotReady = ready;
        LineRef slot = allocateSlot(ready, lineAddr, slotReady);
        const Cycles dramDone = dram_.access(ready, lineAddr, false);
        ++res.dramAccesses;
        slot.lineAddr() = lineAddr;
        slot.state() = CState::kShared;
        slot.dirty() = 0;
        slot.version() = ms_.versions().dramVersion(lineAddr);
        slot.sharers() = 0;
        slot.owner() = static_cast<int>(req.id());
        array_.touch(slot);
        ready = std::max(dramDone, slotReady);
        res.version = slot.version();
    }

    res.exclusive = true;
    res.done = ms_.noc().transfer(ready, memTile_, req.tile(),
                                  noc::Plane::kCohRsp, kLineBytes);
    return res;
}

Cycles
LlcPartition::putWriteback(Cycles now, Addr lineAddr, L2Cache &from,
                           std::uint64_t version)
{
    const auto &t = ms_.timing();
    const Cycles start = port_.acquire(now, t.llcOccupancy);

    LineRef line = array_.find(lineAddr);
    if (!line) {
        // The LLC already evicted or flushed the line; write through.
        const Cycles d = dram_.access(start + t.llcLatency, lineAddr,
                                      true);
        ms_.versions().setDramVersion(lineAddr, version);
        return d;
    }
    line.version() = std::max(line.version(), version);
    line.dirty() = 1;
    if (line.owner() == static_cast<int>(from.id()))
        line.owner() = -1;
    line.sharers() &= ~bitOf(from.id());
    array_.touch(line);
    return start + t.llcLatency;
}

void
LlcPartition::putClean(Addr lineAddr, L2Cache &from)
{
    LineRef line = array_.find(lineAddr);
    if (!line)
        return;
    if (line.owner() == static_cast<int>(from.id()))
        line.owner() = -1;
    line.sharers() &= ~bitOf(from.id());
}

AccessResult
LlcPartition::dmaReadCore(Cycles now, Addr lineAddr, bool coherent,
                          Cycles &readyOut)
{
    const auto &t = ms_.timing();
    const Cycles lookupStart = port_.acquire(now, t.llcOccupancy);
    Cycles ready = lookupStart + t.llcLatency;

    AccessResult res;
    std::uint64_t version = 0;
    LineRef line = array_.find(lineAddr);
    if (line) {
        ++hits_;
        // Coherent DMA consults the directory and recalls private
        // data; LLC-coherent DMA does not (the runtime flushed the
        // private caches up front).
        if (coherent && line.owner() >= 0)
            ready = recallOwner(ready, line, false);
        array_.touch(line);
        version = line.version();
        res.llcHit = true;
    } else {
        ++misses_;
        Cycles slotReady = ready;
        LineRef slot = allocateSlot(ready, lineAddr, slotReady);
        const Cycles dramDone = dram_.access(ready, lineAddr, false);
        ++res.dramAccesses;
        slot.lineAddr() = lineAddr;
        slot.state() = CState::kShared;
        slot.dirty() = 0;
        slot.version() = ms_.versions().dramVersion(lineAddr);
        slot.sharers() = 0;
        slot.owner() = -1;
        array_.touch(slot);
        ready = std::max(dramDone, slotReady);
        version = slot.version();
    }

    ms_.versions().checkRead(lineAddr, version,
                             coherent ? "coh-dma" : "llc-coh-dma");
    readyOut = ready;
    return res;
}

AccessResult
LlcPartition::dmaRead(Cycles now, Addr lineAddr, bool coherent,
                      TileId reqTile)
{
    Cycles ready = now;
    AccessResult res = dmaReadCore(now, lineAddr, coherent, ready);
    res.done = ms_.noc().transfer(ready, memTile_, reqTile,
                                  noc::Plane::kDmaRsp, kLineBytes);
    return res;
}

void
LlcPartition::dmaReadBatch(Cycles first, Cycles stride,
                           const Addr *addrs, unsigned n,
                           bool coherent, TileId reqTile,
                           AccessResult *out)
{
    // Protocol cores in line order; the response packets only touch
    // the DMA-response plane, which no core uses, so they stream
    // back afterwards in the same per-line order.
    readyScratch_.resize(n);
    Cycles now = first;
    for (unsigned i = 0; i < n; ++i) {
        out[i] = dmaReadCore(now, addrs[i], coherent,
                             readyScratch_[i]);
        now += stride;
    }
    const noc::TransferPlan rsp =
        ms_.noc().plan(memTile_, reqTile, noc::Plane::kDmaRsp,
                       kLineBytes);
    ms_.noc().transferEach(rsp, readyScratch_.data(), n,
                           readyScratch_.data());
    for (unsigned i = 0; i < n; ++i)
        out[i].done = readyScratch_[i];
}

AccessResult
LlcPartition::dmaWriteOne(Cycles now, Addr lineAddr, bool coherent)
{
    const auto &t = ms_.timing();
    const Cycles lookupStart = port_.acquire(now, t.llcOccupancy);
    Cycles ready = lookupStart + t.llcLatency;

    AccessResult res;
    LineRef line = array_.find(lineAddr);
    if (line) {
        ++hits_;
        if (coherent) {
            // Full-line DMA overwrite: private copies are invalidated
            // and their dirty data discarded.
            if (line.owner() >= 0)
                ready = recallOwner(ready, line, true);
            ready = std::max(ready,
                             invalidateSharers(ready, line, -1));
        }
        res.llcHit = true;
    } else {
        ++misses_;
        Cycles slotReady = ready;
        line = allocateSlot(ready, lineAddr, slotReady);
        ready = std::max(ready, slotReady);
        line.lineAddr() = lineAddr;
        line.sharers() = 0;
        line.owner() = -1;
    }

    line.state() = CState::kShared;
    line.dirty() = 1;
    line.version() = ms_.versions().bumpLatest(lineAddr);
    array_.touch(line);
    res.done = ready;
    return res;
}

AccessResult
LlcPartition::dmaWrite(Cycles now, Addr lineAddr, bool coherent,
                       TileId /*reqTile*/)
{
    return dmaWriteOne(now, lineAddr, coherent);
}

void
LlcPartition::dmaWriteBatch(Cycles first, Cycles stride,
                            const Addr *addrs, unsigned n,
                            bool coherent, AccessResult *out)
{
    Cycles now = first;
    for (unsigned i = 0; i < n; ++i) {
        out[i] = dmaWriteOne(now, addrs[i], coherent);
        now += stride;
    }
}

AccessResult
LlcPartition::flushAll(Cycles now)
{
    const auto &t = ms_.timing();
    const Cycles walkCycles = array_.lineCapacity() * t.llcWalkPerLine;
    const Cycles issue = port_.acquire(now, walkCycles);

    AccessResult res;
    res.done = issue + walkCycles;

    array_.forEachValid([&](LineRef line) {
        Cycles ready = issue;
        if (line.owner() >= 0)
            ready = recallOwner(ready, line, true);
        if (line.sharers())
            ready = std::max(ready, invalidateSharers(ready, line, -1));
        if (line.dirty()) {
            const Cycles d = dram_.access(ready, line.lineAddr(), true);
            ++res.dramAccesses;
            ms_.versions().setDramVersion(line.lineAddr(),
                                          line.version());
            res.done = std::max(res.done, d);
        } else {
            res.done = std::max(res.done, ready);
        }
        line.clear();
    });
    return res;
}

void
LlcPartition::reset()
{
    array_.invalidateAll();
    port_.reset();
    hits_ = 0;
    misses_ = 0;
    recalls_ = 0;
    invalidations_ = 0;
    evictions_ = 0;
}

} // namespace cohmeleon::mem

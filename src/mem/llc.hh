/**
 * @file
 * One LLC slice with its MESI directory, backing one memory partition.
 *
 * Each memory tile hosts a slice of the LLC, the directory state for
 * the addresses of its partition, and a dedicated DRAM controller
 * (paper Section 4.3). The slice services:
 *  - L2 fills and upgrades (GetS/GetM) with recalls/invalidations,
 *  - DMA reads/writes, either LLC-coherent (directory ignored — the
 *    runtime must have flushed the private caches) or coherent (the
 *    paper's coherent-DMA extension: the LLC recalls private-cache
 *    data that is the target of a DMA request),
 *  - writebacks from private caches,
 *  - the full-flush walk used by the software-managed modes.
 *
 * DMA requests come in two shapes: the per-line entry points
 * (dmaRead/dmaWrite) and the batch entry points (dmaReadBatch/
 * dmaWriteBatch) used by the burst engine, which run the same
 * protocol core per line but hoist the response-route planning out
 * of the loop. Both shapes charge identical timing and statistics.
 */

#ifndef COHMELEON_MEM_LLC_HH
#define COHMELEON_MEM_LLC_HH

#include <cstdint>
#include <string>

#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "mem/mem_types.hh"
#include "noc/noc_model.hh"
#include "sim/server.hh"
#include "sim/types.hh"

namespace cohmeleon::mem
{

class L2Cache;
class MemorySystem;

/** One slice of the last-level cache plus its directory. */
class LlcPartition
{
  public:
    LlcPartition(unsigned index, std::string name, TileId memTile,
                 std::uint64_t sizeBytes, unsigned ways,
                 DramController &dram, MemorySystem &ms);

    /** L2 read miss: fetch a Shared/Exclusive copy. */
    FillResult getS(Cycles now, Addr lineAddr, L2Cache &req);

    /** L2 write miss or upgrade: fetch/grant an exclusive copy. */
    FillResult getM(Cycles now, Addr lineAddr, L2Cache &req);

    /** Dirty writeback from a private cache (eviction or flush). */
    Cycles putWriteback(Cycles now, Addr lineAddr, L2Cache &from,
                        std::uint64_t version);

    /** Clean eviction notice: directory bookkeeping only. */
    void putClean(Addr lineAddr, L2Cache &from);

    /**
     * DMA read of one line.
     * @param coherent recall private-cache data first (coherent-DMA
     *        mode); false reproduces LLC-coherent DMA
     */
    AccessResult dmaRead(Cycles now, Addr lineAddr, bool coherent,
                         TileId reqTile);

    /** DMA full-line write (write-allocate, no fetch). */
    AccessResult dmaWrite(Cycles now, Addr lineAddr, bool coherent,
                          TileId reqTile);

    /**
     * Batch DMA read: line k's request arrives at
     * @p first + k * @p stride (the uniform spacing of a request
     * run); the full per-line result (including the DMA response
     * transfer back to @p reqTile) lands in @p out[k]. Identical to
     * n dmaRead() calls in order: the protocol cores run per line,
     * then the response packets (which touch only the DMA-response
     * plane) stream back through one register-resident link run.
     */
    void dmaReadBatch(Cycles first, Cycles stride, const Addr *addrs,
                      unsigned n, bool coherent, TileId reqTile,
                      AccessResult *out);

    /** Batch DMA write; as dmaWrite(), the response transfer is the
     *  caller's (MemorySystem's) job. */
    void dmaWriteBatch(Cycles first, Cycles stride, const Addr *addrs,
                       unsigned n, bool coherent, AccessResult *out);

    /** Write back all dirty lines to DRAM and invalidate the slice. */
    AccessResult flushAll(Cycles now);

    unsigned index() const { return index_; }
    TileId memTile() const { return memTile_; }
    const std::string &name() const { return name_; }
    CacheArray &array() { return array_; }
    DramController &dram() { return dram_; }
    Server &port() { return port_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t recalls() const { return recalls_; }
    std::uint64_t invalidations() const { return invalidations_; }
    std::uint64_t evictions() const { return evictions_; }

    void reset();

  private:
    /** Protocol core of one DMA read, up to (but excluding) the
     *  response transfer; @p ready receives the data-ready time. */
    AccessResult dmaReadCore(Cycles now, Addr lineAddr, bool coherent,
                             Cycles &ready);

    /** Protocol core of one DMA write (no response transfer). */
    AccessResult dmaWriteOne(Cycles now, Addr lineAddr, bool coherent);

    /** Recall dirty/exclusive data from the owner; optionally
     *  invalidate. @return completion time (now if no owner). */
    Cycles recallOwner(Cycles now, LineRef line, bool invalidate);

    /** Invalidate all sharers except @p exceptId. @return time. */
    Cycles invalidateSharers(Cycles now, LineRef line, int exceptId);

    /** Make room for @p lineAddr. @return {slot, ready time}. */
    LineRef allocateSlot(Cycles now, Addr lineAddr, Cycles &ready);

    unsigned index_;
    std::string name_;
    TileId memTile_;
    MemorySystem &ms_;
    DramController &dram_;
    CacheArray array_;
    Server port_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t recalls_ = 0;
    std::uint64_t invalidations_ = 0;
    std::uint64_t evictions_ = 0;

    std::vector<Cycles> readyScratch_; ///< batch data-ready times
};

} // namespace cohmeleon::mem

#endif // COHMELEON_MEM_LLC_HH

#include "rt/runtime.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cohmeleon::rt
{

EspRuntime::EspRuntime(soc::Soc &soc, CoherencePolicy &policy)
    : soc_(soc), policy_(policy)
{
    cpuSw_.resize(soc.numCpus());
    accQueue_.resize(soc.numAccs());
    accDisabled_.resize(soc.numAccs(), 0);
}

void
EspRuntime::setDisabledModes(AccId acc, coh::ModeMask modes)
{
    fatalIf(acc >= soc_.numAccs(), "bad accelerator id");
    accDisabled_[acc] =
        modes & static_cast<coh::ModeMask>(
                    ~coh::maskOf(coh::CoherenceMode::kNonCohDma));
}

coh::ModeMask
EspRuntime::effectiveModes(AccId acc) const
{
    const coh::ModeMask disabled = static_cast<coh::ModeMask>(
        globalDisabled_ | accDisabled_[acc]);
    coh::ModeMask mask = static_cast<coh::ModeMask>(
        soc_.bridge(acc).availableModes() &
        static_cast<coh::ModeMask>(~disabled));
    // The bridge always offers non-coherent DMA and the setters never
    // disable it, so the mask cannot be empty; keep the guarantee
    // explicit anyway.
    if (mask == 0)
        mask = coh::maskOf(coh::CoherenceMode::kNonCohDma);
    return mask;
}

void
EspRuntime::invoke(unsigned cpu, const InvocationRequest &req,
                   DoneCallback done)
{
    fatalIf(cpu >= soc_.numCpus(), "bad cpu index");
    fatalIf(req.acc >= soc_.numAccs(), "bad accelerator id");
    fatalIf(req.data == nullptr || !req.data->valid(),
            "invocation without data");
    fatalIf(req.footprintBytes == 0 ||
                req.footprintBytes > req.data->bytes(),
            "invocation footprint outside the allocation");

    // Accelerators are shared; concurrent requests to the same
    // instance queue in the device driver.
    if (soc_.accelerator(req.acc).busy() ||
        !accQueue_[req.acc].empty()) {
        accQueue_[req.acc].push_back({req, cpu, std::move(done)});
        return;
    }
    startNow(cpu, req, std::move(done));
}

void
EspRuntime::startNow(unsigned cpu, const InvocationRequest &req,
                     DoneCallback done)
{
    const Cycles t0 = soc_.eq().now();
    const soc::SocConfig &cfg = soc_.config();
    acc::Accelerator &accel = soc_.accelerator(req.acc);

    // ---- 1. Sense ------------------------------------------------------
    DecisionContext ctx;
    ctx.status = &status_;
    ctx.acc = req.acc;
    ctx.accName = accel.config().name;
    ctx.accType = accel.config().typeName;
    ctx.footprintBytes = req.footprintBytes;
    ctx.partitions = req.data->partitionsUsed(soc_.map());
    ctx.availableModes = effectiveModes(req.acc);
    ctx.l2Bytes = cfg.accL2Bytes;
    ctx.llcSliceBytes = cfg.llcSliceBytes;
    ctx.totalLlcBytes = cfg.totalLlcBytes();

    // ---- 2. Decide -------------------------------------------------------
    std::uint64_t tag = 0;
    const coh::CoherenceMode mode = policy_.decide(ctx, tag);
    panic_if(!coh::maskHas(ctx.availableModes, mode),
             "policy chose unavailable mode ", toString(mode));

    const Cycles swCost = cfg.sw.driverInvoke + cfg.sw.statusTracking +
                          policy_.decisionCost();
    const Cycles tSw = cpuSw_[cpu].finishAfter(t0, swCost);

    // Monitor "before" snapshot (32-bit registers).
    std::vector<std::uint32_t> ddrBefore(soc_.map().numPartitions());
    for (unsigned p = 0; p < ddrBefore.size(); ++p)
        ddrBefore[p] = soc_.monitors().readDdrAccessReg(p);

    // ---- 3. Actuate ------------------------------------------------------
    // Config-register write is concurrent with the accelerator's
    // application-specific configuration: no extra cost (Section 4.1).
    Cycles flushDone = tSw;
    if (coh::requiresL2Flush(mode))
        flushDone = soc_.ms().flushL2s(tSw).done;
    if (coh::requiresLlcFlush(mode))
        flushDone = soc_.ms().flushLlc(flushDone).done;
    const Cycles flushCycles = flushDone - tSw;

    const Cycles tTlb = soc_.tlb(req.acc).load(flushDone, *req.data);
    const Cycles tlbCycles = tTlb - flushDone;

    // Update the global status structures.
    ActiveInvocation inv;
    inv.acc = req.acc;
    inv.mode = mode;
    inv.footprintBytes = req.footprintBytes;
    for (unsigned p : ctx.partitions) {
        inv.shares.push_back(
            {p, req.data->footprintOnPartition(soc_.map(), p)});
    }
    const SystemStatus::Handle handle = status_.onStart(std::move(inv));

    // Sample this invocation's share of each controller's active
    // footprint once the accelerator actually starts (after flushes
    // and TLB preload), when same-wave contemporaries have all
    // registered; the evaluate phase applies these shares to the
    // monitor deltas. (Sampling at completion would let the last
    // finisher absorb the whole window's traffic; sampling inside
    // startNow would let the first starter do the same.)
    auto shares = std::make_shared<std::vector<double>>(
        soc_.map().numPartitions(), 0.0);
    const mem::Allocation *data = req.data;
    soc_.eq().scheduleAt(tTlb, [this, shares, data,
                                partitions = ctx.partitions] {
        for (unsigned p : partitions) {
            const std::uint64_t mine =
                data->footprintOnPartition(soc_.map(), p);
            const std::uint64_t all =
                status_.activeBytesOnPartition(p);
            if (mine > 0 && all > 0) {
                (*shares)[p] = static_cast<double>(mine) /
                               static_cast<double>(all);
            }
        }
    });

    // ---- Run -------------------------------------------------------------
    const acc::TrafficProfile profile =
        req.profileOverride ? *req.profileOverride
                            : accel.config().profile;
    accel.start(
        tTlb, *req.data, req.footprintBytes, profile, mode,
        [this, req, cpu, mode, tag, handle, t0, flushCycles, tlbCycles,
         ddrBefore, shares,
         done = std::move(done)](const acc::InvocationMetrics &) mutable {
            finish(req, cpu, mode, tag, handle, t0, flushCycles,
                   tlbCycles, ddrBefore, *shares, std::move(done));
        });
}

void
EspRuntime::finish(const InvocationRequest &req, unsigned cpu,
                   coh::CoherenceMode mode, std::uint64_t tag,
                   SystemStatus::Handle handle, Cycles invokeTime,
                   Cycles flushCycles, Cycles tlbCycles,
                   const std::vector<std::uint32_t> &ddrBefore,
                   const std::vector<double> &shareAtStart,
                   DoneCallback done)
{
    const Cycles tEnd = soc_.eq().now();
    const soc::SocConfig &cfg = soc_.config();
    acc::Accelerator &accel = soc_.accelerator(req.acc);
    const acc::InvocationMetrics &m = accel.lastMetrics();

    // ---- 4. Evaluate -----------------------------------------------------
    const Cycles tEval =
        cpuSw_[cpu].finishAfter(tEnd, cfg.sw.evaluateCost);

    InvocationRecord rec;
    rec.acc = req.acc;
    rec.accType = accel.config().typeName;
    rec.mode = mode;
    rec.footprintBytes = req.footprintBytes;
    rec.invokeTime = invokeTime;
    rec.endTime = tEval;
    rec.wallCycles = tEval - invokeTime;
    rec.flushCycles = flushCycles;
    rec.tlbCycles = tlbCycles;
    rec.swOverheadCycles = cfg.sw.driverInvoke + cfg.sw.statusTracking +
                           policy_.decisionCost() + cfg.sw.evaluateCost;
    rec.accTotalCycles = m.totalCycles;
    rec.accCommCycles = m.commCycles;
    rec.ddrExact = m.dramAccessesExact;
    rec.policyTag = tag;

    // Footprint-proportional attribution over the controllers this
    // invocation touched (the paper's ddr(k, m) formula), using the
    // shares sampled when the invocation entered the active set.
    double approx = 0.0;
    std::uint64_t totalDelta = 0;
    for (unsigned p = 0; p < ddrBefore.size(); ++p) {
        const std::uint32_t after = soc_.monitors().readDdrAccessReg(p);
        const std::uint32_t delta =
            soc::HardwareMonitors::delta32(ddrBefore[p], after);
        totalDelta += delta;
        approx += static_cast<double>(delta) * shareAtStart[p];
    }
    rec.ddrMonitorDelta = totalDelta;
    rec.ddrApprox = useExact_ ? static_cast<double>(rec.ddrExact)
                              : approx;

    status_.onEnd(handle);
    policy_.feedback(rec);
    ++completed_;

    // Deliver completion to the application thread, then admit the
    // next queued request for this accelerator.
    soc_.eq().scheduleAt(tEval, [this, rec, done = std::move(done),
                                 acc = req.acc]() mutable {
        if (done)
            done(rec);
        if (!accQueue_[acc].empty() && !soc_.accelerator(acc).busy()) {
            Pending p = std::move(accQueue_[acc].front());
            accQueue_[acc].erase(accQueue_[acc].begin());
            startNow(p.cpu, p.req, std::move(p.done));
        }
    });
}

void
EspRuntime::reset()
{
    status_.reset();
    for (auto &s : cpuSw_)
        s.reset();
    for (auto &q : accQueue_)
        q.clear();
    completed_ = 0;
}

} // namespace cohmeleon::rt

/**
 * @file
 * The ESP-like accelerator invocation runtime implementing the four
 * phases of the paper's framework (Section 4.1):
 *
 *  1. Sense:    snapshot the SystemStatus structures;
 *  2. Decide:   delegate to a CoherencePolicy (fixed, random, manual,
 *               fixed-heterogeneous, or Cohmeleon's RL agent);
 *  3. Actuate:  write the tile's coherence config register, perform
 *               the software flushes the chosen mode requires, and
 *               preload the TLB;
 *  4. Evaluate: read the hardware monitors, attribute off-chip
 *               accesses with the paper's footprint-proportional
 *               formula, and feed the result back to the policy.
 *
 * All software costs (driver, decision, flush, TLB, evaluation) are
 * charged as simulated CPU time; "cohmeleon actuates the coherence
 * mode with a single line of code" and its overhead is part of every
 * reported number, as in the paper.
 */

#ifndef COHMELEON_RT_RUNTIME_HH
#define COHMELEON_RT_RUNTIME_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "acc/traffic_profile.hh"
#include "coh/coherence_mode.hh"
#include "mem/page_allocator.hh"
#include "rt/system_status.hh"
#include "sim/server.hh"
#include "soc/soc.hh"

namespace cohmeleon::rt
{

/** One accelerator invocation request from application software. */
struct InvocationRequest
{
    AccId acc = 0;
    std::uint64_t footprintBytes = 0;
    const mem::Allocation *data = nullptr;
    /** Operating-mode configuration overriding the instance profile. */
    std::optional<acc::TrafficProfile> profileOverride;
};

/** Everything the policy may look at when deciding (sense output). */
struct DecisionContext
{
    const SystemStatus *status = nullptr;
    AccId acc = 0;
    std::string_view accName; ///< instance name
    std::string_view accType; ///< preset/type name
    std::uint64_t footprintBytes = 0;
    std::vector<unsigned> partitions; ///< partitions the data touches
    coh::ModeMask availableModes = coh::kAllModesMask;
    std::uint64_t l2Bytes = 0;
    std::uint64_t llcSliceBytes = 0;
    std::uint64_t totalLlcBytes = 0;
};

/** Complete record of one finished invocation. */
struct InvocationRecord
{
    AccId acc = 0;
    std::string accType;
    coh::CoherenceMode mode = coh::CoherenceMode::kNonCohDma;
    std::uint64_t footprintBytes = 0;

    Cycles invokeTime = 0; ///< software entry
    Cycles endTime = 0;    ///< evaluation complete
    Cycles wallCycles = 0; ///< endTime - invokeTime (paper's exec time)
    Cycles flushCycles = 0;
    Cycles tlbCycles = 0;
    Cycles swOverheadCycles = 0; ///< driver + decision + evaluate

    Cycles accTotalCycles = 0; ///< monitor: active cycles
    Cycles accCommCycles = 0;  ///< monitor: communication cycles

    double ddrApprox = 0.0;     ///< footprint-proportional attribution
    std::uint64_t ddrExact = 0; ///< ground truth (not SW-visible)
    std::uint64_t ddrMonitorDelta = 0; ///< total delta over controllers

    /** Opaque policy bookkeeping. The runtime carries the value the
     *  policy's decide() wrote into tagOut through the invocation
     *  unchanged and hands it back in feedback() — Cohmeleon encodes
     *  (state, action) here, so this round trip is what ties each
     *  reward to the Q-table entry that earned it. */
    std::uint64_t policyTag = 0;
};

/**
 * Decision-policy interface. Implementations live in src/policy; the
 * interface lives here so the runtime does not depend on them.
 */
class CoherencePolicy
{
  public:
    virtual ~CoherencePolicy() = default;

    /** Pick a mode for the described invocation. May set @p tagOut to
     *  carry bookkeeping into the matching feedback() call. */
    virtual coh::CoherenceMode decide(const DecisionContext &ctx,
                                      std::uint64_t &tagOut) = 0;

    /** Observe the completed invocation (learning hook). */
    virtual void feedback(const InvocationRecord &rec) { (void)rec; }

    virtual std::string_view name() const = 0;

    /** Software cycles the decision costs on the invoking CPU. */
    virtual Cycles decisionCost() const { return 60; }

    /** Called by experiment drivers at the end of a training
     *  iteration (epsilon/alpha decay hook). */
    virtual void onIterationEnd() {}
};

/** The runtime backend of the accelerator invocation API. */
class EspRuntime
{
  public:
    using DoneCallback = std::function<void(const InvocationRecord &)>;

    EspRuntime(soc::Soc &soc, CoherencePolicy &policy);

    /**
     * Asynchronously run one invocation from software thread context
     * on @p cpu. @p done fires when the evaluate phase completes.
     * @pre the target accelerator is idle or will be when its queue
     *      drains (the runtime serializes per-accelerator requests)
     */
    void invoke(unsigned cpu, const InvocationRequest &req,
                DoneCallback done);

    SystemStatus &status() { return status_; }
    CoherencePolicy &policy() { return policy_; }
    soc::Soc &soc() { return soc_; }

    /** Use exact instead of footprint-proportional DDR attribution
     *  (ablation of the paper's approximation). */
    void setUseExactAttribution(bool on) { useExact_ = on; }

    /**
     * Scenario perturbation: mask @p modes out of every tile's
     * availability (on top of what the hardware already rules out,
     * e.g. fully-coherent on cache-less tiles). Non-coherent DMA can
     * never be masked away — it is the mode every ESP tile implements
     * — so the effective mask is always non-empty.
     */
    void
    setDisabledModes(coh::ModeMask modes)
    {
        globalDisabled_ =
            modes & static_cast<coh::ModeMask>(
                        ~coh::maskOf(coh::CoherenceMode::kNonCohDma));
    }

    /** Per-accelerator variant of setDisabledModes() (hot-unplugged
     *  coherence planes, per-tile fault injection). Composes with the
     *  global mask. */
    void setDisabledModes(AccId acc, coh::ModeMask modes);

    /** The mask decide() will see for @p acc's tile. */
    coh::ModeMask effectiveModes(AccId acc) const;

    std::uint64_t invocationsCompleted() const { return completed_; }

    /** Clear transient state between experiments. */
    void reset();

  private:
    struct Pending
    {
        InvocationRequest req;
        unsigned cpu = 0;
        DoneCallback done;
    };

    void startNow(unsigned cpu, const InvocationRequest &req,
                  DoneCallback done);
    void finish(const InvocationRequest &req, unsigned cpu,
                coh::CoherenceMode mode, std::uint64_t tag,
                SystemStatus::Handle handle, Cycles invokeTime,
                Cycles flushCycles, Cycles tlbCycles,
                const std::vector<std::uint32_t> &ddrBefore,
                const std::vector<double> &shareAtStart,
                DoneCallback done);

    soc::Soc &soc_;
    CoherencePolicy &policy_;
    SystemStatus status_;
    std::vector<Server> cpuSw_;        ///< per-CPU software serialization
    std::vector<std::vector<Pending>> accQueue_; ///< per-acc FIFO
    bool useExact_ = false;
    coh::ModeMask globalDisabled_ = 0;
    std::vector<coh::ModeMask> accDisabled_; ///< per-acc, sized lazily
    std::uint64_t completed_ = 0;
};

} // namespace cohmeleon::rt

#endif // COHMELEON_RT_RUNTIME_HH

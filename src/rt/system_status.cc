#include "rt/system_status.hh"

#include "sim/logging.hh"

namespace cohmeleon::rt
{

SystemStatus::Handle
SystemStatus::onStart(ActiveInvocation inv)
{
    const Handle h = nextHandle_++;
    active_.emplace(h, std::move(inv));
    return h;
}

void
SystemStatus::onEnd(Handle handle)
{
    const auto it = active_.find(handle);
    panic_if(it == active_.end(), "onEnd for unknown invocation");
    active_.erase(it);
}

unsigned
SystemStatus::activeWithMode(coh::CoherenceMode mode) const
{
    unsigned n = 0;
    // determinism: allow(unordered-iteration, commutative count — order-independent fold)
    for (const auto &[h, inv] : active_)
        n += inv.mode == mode ? 1 : 0;
    return n;
}

double
SystemStatus::avgNonCohOnPartitions(
    const std::vector<unsigned> &needed) const
{
    if (needed.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (unsigned p : needed) {
        // determinism: allow(unordered-iteration, commutative count — order-independent fold)
        for (const auto &[h, inv] : active_) {
            if (inv.mode != coh::CoherenceMode::kNonCohDma)
                continue;
            for (const PartitionShare &s : inv.shares) {
                if (s.partition == p && s.bytes > 0) {
                    ++total;
                    break;
                }
            }
        }
    }
    return static_cast<double>(total) /
           static_cast<double>(needed.size());
}

double
SystemStatus::avgToLlcOnPartitions(
    const std::vector<unsigned> &needed) const
{
    if (needed.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (unsigned p : needed) {
        // determinism: allow(unordered-iteration, commutative count — order-independent fold)
        for (const auto &[h, inv] : active_) {
            if (inv.mode == coh::CoherenceMode::kNonCohDma)
                continue;
            for (const PartitionShare &s : inv.shares) {
                if (s.partition == p && s.bytes > 0) {
                    ++total;
                    break;
                }
            }
        }
    }
    return static_cast<double>(total) /
           static_cast<double>(needed.size());
}

std::uint64_t
SystemStatus::activeBytesOnPartition(unsigned p) const
{
    std::uint64_t total = 0;
    // determinism: allow(unordered-iteration, commutative uint64 sum — order-independent fold)
    for (const auto &[h, inv] : active_) {
        for (const PartitionShare &s : inv.shares) {
            if (s.partition == p)
                total += s.bytes;
        }
    }
    return total;
}

double
SystemStatus::avgActiveBytesOnPartitions(
    const std::vector<unsigned> &needed) const
{
    if (needed.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (unsigned p : needed)
        total += activeBytesOnPartition(p);
    return static_cast<double>(total) /
           static_cast<double>(needed.size());
}

std::uint64_t
SystemStatus::totalActiveFootprint() const
{
    std::uint64_t total = 0;
    // determinism: allow(unordered-iteration, commutative uint64 sum — order-independent fold)
    for (const auto &[h, inv] : active_)
        total += inv.footprintBytes;
    return total;
}

void
SystemStatus::reset()
{
    active_.clear();
    nextHandle_ = 1;
}

} // namespace cohmeleon::rt

/**
 * @file
 * The introspective SoC status tracking of Section 4.1/4.3: global
 * software structures, maintained by the accelerator-invocation API,
 * that hold the number of active accelerators, their coherence modes,
 * and their memory footprints (per partition). Policies and the RL
 * state encoder sense the system exclusively through this class.
 */

#ifndef COHMELEON_RT_SYSTEM_STATUS_HH
#define COHMELEON_RT_SYSTEM_STATUS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "coh/coherence_mode.hh"
#include "sim/types.hh"

namespace cohmeleon::rt
{

/** Per-partition share of one invocation's data. */
struct PartitionShare
{
    unsigned partition = 0;
    std::uint64_t bytes = 0;
};

/** Software-visible record of one in-flight invocation. */
struct ActiveInvocation
{
    AccId acc = 0;
    coh::CoherenceMode mode = coh::CoherenceMode::kNonCohDma;
    std::uint64_t footprintBytes = 0;
    std::vector<PartitionShare> shares;
};

/** Registry of in-flight accelerator invocations. */
class SystemStatus
{
  public:
    using Handle = std::uint64_t;

    /** Record the start of an invocation. */
    Handle onStart(ActiveInvocation inv);

    /** Record its completion. @pre handle is live */
    void onEnd(Handle handle);

    unsigned activeCount() const
    {
        return static_cast<unsigned>(active_.size());
    }

    /** Number of active invocations running under @p mode. */
    unsigned activeWithMode(coh::CoherenceMode mode) const;

    unsigned
    activeFullyCoherent() const
    {
        return activeWithMode(coh::CoherenceMode::kFullyCoh);
    }

    /**
     * Average, over @p needed partitions, of the number of active
     * non-coherent-DMA accelerators with data on that partition
     * (Table 3, "Non coh acc per tile").
     */
    double avgNonCohOnPartitions(
        const std::vector<unsigned> &needed) const;

    /**
     * Average, over @p needed partitions, of the number of active
     * accelerators whose mode routes requests through that LLC
     * partition — LLC-coherent DMA, coherent DMA, or fully coherent
     * (Table 3, "To LLC per tile").
     */
    double avgToLlcOnPartitions(
        const std::vector<unsigned> &needed) const;

    /** Active bytes mapped onto partition @p p. */
    std::uint64_t activeBytesOnPartition(unsigned p) const;

    /** Average active bytes over @p needed partitions
     *  (Table 3, "Tile footprint"). */
    double avgActiveBytesOnPartitions(
        const std::vector<unsigned> &needed) const;

    /** Sum of footprints of all active invocations (Algorithm 1's
     *  active_footprint). */
    std::uint64_t totalActiveFootprint() const;

    void reset();

  private:
    Handle nextHandle_ = 1;
    std::unordered_map<Handle, ActiveInvocation> active_;
};

} // namespace cohmeleon::rt

#endif // COHMELEON_RT_SYSTEM_STATUS_HH

#include "policy/fixed.hh"

namespace cohmeleon::policy
{

FixedPolicy::FixedPolicy(coh::CoherenceMode mode)
    : mode_(mode), name_("fixed-" + std::string(coh::toString(mode)))
{
}

coh::CoherenceMode
FixedPolicy::decide(const rt::DecisionContext &ctx, std::uint64_t &tagOut)
{
    tagOut = 0;
    return fallbackMode(mode_, ctx.availableModes);
}

FixedHeterogeneousPolicy::FixedHeterogeneousPolicy(
    std::map<std::string, coh::CoherenceMode> table,
    coh::CoherenceMode fallback)
    : table_(std::move(table)), fallback_(fallback)
{
}

coh::CoherenceMode
FixedHeterogeneousPolicy::decide(const rt::DecisionContext &ctx,
                                 std::uint64_t &tagOut)
{
    tagOut = 0;
    // Most specific entry wins: instance name, then type name.
    auto it = table_.find(std::string(ctx.accName));
    if (it == table_.end())
        it = table_.find(std::string(ctx.accType));
    const coh::CoherenceMode wanted =
        it != table_.end() ? it->second : fallback_;
    return fallbackMode(wanted, ctx.availableModes);
}

} // namespace cohmeleon::policy

/**
 * @file
 * The introspective, manually-tuned runtime heuristic of the paper
 * (Algorithm 1): a hand-crafted decision tree over the invocation
 * footprint and the live system status, tuned for ESP's coherence
 * implementation from tens of thousands of profiled invocations. It
 * is the strongest baseline Cohmeleon is compared against — and, as
 * the paper notes, it would need manual re-tuning on other SoCs
 * (Figure 9 shows it suboptimal on SoC5).
 */

#ifndef COHMELEON_POLICY_MANUAL_HH
#define COHMELEON_POLICY_MANUAL_HH

#include "policy/policy.hh"

namespace cohmeleon::policy
{

/** Algorithm 1, verbatim. */
class ManualPolicy : public rt::CoherencePolicy
{
  public:
    /**
     * @param extraSmallThreshold the EXTRA_SMALL_THRESHOLD constant
     *        (footprints at or below it always run fully coherent)
     */
    explicit ManualPolicy(std::uint64_t extraSmallThreshold = 4096);

    coh::CoherenceMode decide(const rt::DecisionContext &ctx,
                              std::uint64_t &tagOut) override;
    std::string_view name() const override { return "manual"; }
    Cycles decisionCost() const override { return 120; }

    std::uint64_t extraSmallThreshold() const
    {
        return extraSmallThreshold_;
    }

  private:
    std::uint64_t extraSmallThreshold_;
};

} // namespace cohmeleon::policy

#endif // COHMELEON_POLICY_MANUAL_HH

/**
 * @file
 * The Cohmeleon policy: the paper's contribution, wiring the sensed
 * SystemStatus through the Table-3 state encoder into the Q-learning
 * agent, and converting finished invocations into the multi-objective
 * reward that updates the Q-table online.
 */

#ifndef COHMELEON_POLICY_COHMELEON_POLICY_HH
#define COHMELEON_POLICY_COHMELEON_POLICY_HH

#include "policy/policy.hh"
#include "rl/agent.hh"
#include "rl/reward.hh"
#include "rl/state_encoder.hh"

namespace cohmeleon::policy
{

/** Hyper-parameters of one Cohmeleon instance. */
struct CohmeleonParams
{
    rl::RewardWeights weights;   ///< (x, y, z) of Section 4.2
    rl::AgentParams agent;       ///< epsilon/alpha schedule
};

/** Learning-based coherence selection (paper Section 4). */
class CohmeleonPolicy : public rt::CoherencePolicy
{
  public:
    explicit CohmeleonPolicy(CohmeleonParams params = {});

    coh::CoherenceMode decide(const rt::DecisionContext &ctx,
                              std::uint64_t &tagOut) override;
    void feedback(const rt::InvocationRecord &rec) override;
    std::string_view name() const override { return "cohmeleon"; }

    /** Q-table lookup + epsilon draw + status read. */
    Cycles decisionCost() const override { return 180; }

    void onIterationEnd() override { agent_.advanceIteration(); }

    /** Stop exploration and learning (evaluation phase). */
    void freeze() { agent_.freeze(); }
    void unfreeze() { agent_.unfreeze(); }

    rl::QLearningAgent &agent() { return agent_; }
    const rl::QLearningAgent &agent() const { return agent_; }
    rl::RewardTracker &rewardTracker() { return tracker_; }
    const rl::RewardTracker &rewardTracker() const { return tracker_; }
    const CohmeleonParams &params() const { return params_; }

    /** Sense + encode, exposed for tests. */
    static rl::StateTuple senseState(const rt::DecisionContext &ctx);

    /** Scale a finished invocation into the paper's measurements. */
    static rl::InvocationMeasure measureOf(
        const rt::InvocationRecord &rec);

  private:
    CohmeleonParams params_;
    rl::QLearningAgent agent_;
    rl::RewardTracker tracker_;
};

} // namespace cohmeleon::policy

#endif // COHMELEON_POLICY_COHMELEON_POLICY_HH

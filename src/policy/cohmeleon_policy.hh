/**
 * @file
 * The Cohmeleon policy: the paper's contribution, wiring the sensed
 * SystemStatus through the Table-3 state encoder into the Q-learning
 * agent, and converting finished invocations into the multi-objective
 * reward that updates the learned model online.
 *
 * The model backend is pluggable (rl::ModelSpec in the agent params):
 * tabular decisions tag invocations with state * kNumActions + action
 * (the tag *is* the lookup key, as in PR 3), while feature-based
 * backends need the raw sensed inputs back at feedback time, so their
 * decisions tag a pending-features entry the feedback path consumes.
 */

#ifndef COHMELEON_POLICY_COHMELEON_POLICY_HH
#define COHMELEON_POLICY_COHMELEON_POLICY_HH

#include <unordered_map>

#include "policy/policy.hh"
#include "rl/agent.hh"
#include "rl/learned_model.hh"
#include "rl/reward.hh"
#include "rl/state_encoder.hh"

namespace cohmeleon::policy
{

/** Hyper-parameters of one Cohmeleon instance. */
struct CohmeleonParams
{
    rl::RewardWeights weights;   ///< (x, y, z) of Section 4.2
    rl::AgentParams agent;       ///< epsilon/alpha schedule + model
};

/** Learning-based coherence selection (paper Section 4). */
class CohmeleonPolicy : public rt::CoherencePolicy
{
  public:
    explicit CohmeleonPolicy(CohmeleonParams params = {});

    coh::CoherenceMode decide(const rt::DecisionContext &ctx,
                              std::uint64_t &tagOut) override;
    void feedback(const rt::InvocationRecord &rec) override;
    std::string_view name() const override { return "cohmeleon"; }

    /** Model lookup + epsilon draw + status read. */
    Cycles decisionCost() const override { return 180; }

    void onIterationEnd() override { agent_.advanceIteration(); }

    /** Stop exploration and learning (evaluation phase). */
    void freeze() { agent_.freeze(); }
    void unfreeze() { agent_.unfreeze(); }

    rl::QLearningAgent &agent() { return agent_; }
    const rl::QLearningAgent &agent() const { return agent_; }
    rl::RewardTracker &rewardTracker() { return tracker_; }
    const rl::RewardTracker &rewardTracker() const { return tracker_; }
    const CohmeleonParams &params() const { return params_; }

    /** First tag value of the pending-features scheme; tags below it
     *  are tabular state * kNumActions + action encodings. */
    static constexpr std::uint64_t kPendingTagBase =
        std::uint64_t(rl::StateTuple::kNumStates) * rl::kNumActions;

    /** Sense the raw decision inputs (un-bucketed), exposed for the
     *  serve path and tests. */
    static rl::StateInputs senseInputs(const rt::DecisionContext &ctx);

    /** Sense + encode, exposed for tests. */
    static rl::StateTuple senseState(const rt::DecisionContext &ctx);

    /** Scale a finished invocation into the paper's measurements. */
    static rl::InvocationMeasure measureOf(
        const rt::InvocationRecord &rec);

  private:
    struct PendingDecision
    {
        rl::ModelFeatures features;
        unsigned action = 0;
    };

    CohmeleonParams params_;
    rl::QLearningAgent agent_;
    rl::RewardTracker tracker_;
    /** Feature-based backends only: decisions awaiting feedback,
     *  keyed by tag. */
    std::unordered_map<std::uint64_t, PendingDecision> pending_;
    std::uint64_t nextTag_ = kPendingTagBase;
};

} // namespace cohmeleon::policy

#endif // COHMELEON_POLICY_COHMELEON_POLICY_HH

/**
 * @file
 * Versioned persistence of the *whole* Cohmeleon learning state, not
 * just the model estimates: the learned model with its per-entry
 * visit counts (the training mass that makes models mergeable), the
 * agent schedule (hyper-parameters, iteration, frozen flag) and
 * exploration-RNG state, the reward weights, and the RewardTracker's
 * per-accelerator min/max history. A policy restored from a
 * checkpoint reproduces the original's decisions bit-for-bit —
 * including tie-break draws — and can resume training where the
 * original stopped.
 *
 * The format is line-oriented text with doubles printed at 17
 * significant digits (lossless for IEEE binary64), so two checkpoints
 * are byte-identical exactly when the learning states are.
 *
 * Format history (the ROADMAP's "checkpoint evolution" contract:
 * older versions migrate forward, unknown future versions hard-fail):
 *  - v1 (PR 3): weights, agent schedule, RNG state, Q-table with
 *    visit counts, reward-tracker extrema.
 *  - v2 (PR 5): adds the strategy axes — the agent's ExploreSpec and
 *    the MergeSpec the model was folded with.
 *  - v3 (this PR): adds the model backend — a "model <spec>" line
 *    (rl::ModelSpec canonical text) and a backend-specific model
 *    block in place of the bare Q-table block. v1/v2 streams migrate
 *    to the tabular backend (exactly what they were trained as) and
 *    resume training bit-exactly; their Q-table block *is* the v3
 *    tabular model block, byte for byte.
 */

#ifndef COHMELEON_POLICY_CHECKPOINT_HH
#define COHMELEON_POLICY_CHECKPOINT_HH

#include <array>
#include <iosfwd>
#include <memory>
#include <string>

#include "policy/cohmeleon_policy.hh"
#include "rl/agent.hh"
#include "rl/learned_model.hh"
#include "rl/reward.hh"
#include "rl/strategy.hh"

namespace cohmeleon::policy
{

/** Complete learning state of one Cohmeleon policy. */
struct PolicyCheckpoint
{
    /** Current format version (written by save). load() accepts
     *  every version back to kOldestVersion and migrates it. */
    static constexpr unsigned kVersion = 3;
    static constexpr unsigned kOldestVersion = 1;

    rl::RewardWeights weights;   ///< (x, y, z) of Section 4.2
    rl::AgentParams agent;       ///< schedule + seed + strategy specs
    /** How this model's shards were folded (metadata the training
     *  driver stamps; defaults for online-trained policies). */
    rl::MergeSpec merge;
    unsigned iteration = 0;      ///< schedule position
    bool frozen = false;         ///< evaluation mode
    std::array<std::uint64_t, 4> rngState{}; ///< exploration stream
    rl::Model model;             ///< learned backend + training mass
    rl::RewardTracker tracker;   ///< per-accelerator min/max history

    /** Snapshot @p policy's full learning state. */
    static PolicyCheckpoint capture(const CohmeleonPolicy &policy);

    /** Construct a policy that continues exactly where the
     *  checkpointed one stopped (frozen if the checkpoint was). */
    std::unique_ptr<CohmeleonPolicy> makePolicy() const;

    void save(std::ostream &os) const;

    /**
     * Parse a save() stream. Fails loudly on malformed input — wrong
     * magic/version/dimensions, an unknown model backend, truncation,
     * non-finite values, invalid hyper-parameters, out-of-order
     * tracker entries, a missing end marker, or trailing garbage.
     * @throws FatalError on malformed input
     */
    static PolicyCheckpoint load(std::istream &is);

    /** save() to / load() from a file path.
     *  @throws FatalError on I/O or format errors */
    void saveFile(const std::string &path) const;
    static PolicyCheckpoint loadFile(const std::string &path);

    /** save() rendered to a string (for byte-level comparisons). */
    std::string serialized() const;
};

} // namespace cohmeleon::policy

#endif // COHMELEON_POLICY_CHECKPOINT_HH

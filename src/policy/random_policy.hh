/**
 * @file
 * The Random baseline of Section 4.3: a uniformly random coherence
 * mode per invocation (also the behaviour of an untrained Cohmeleon
 * model with epsilon = 1).
 */

#ifndef COHMELEON_POLICY_RANDOM_POLICY_HH
#define COHMELEON_POLICY_RANDOM_POLICY_HH

#include "policy/policy.hh"
#include "sim/rng.hh"

namespace cohmeleon::policy
{

/** Uniform random selection among the tile's available modes. */
class RandomPolicy : public rt::CoherencePolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 11);

    coh::CoherenceMode decide(const rt::DecisionContext &ctx,
                              std::uint64_t &tagOut) override;
    std::string_view name() const override { return "rand"; }
    Cycles decisionCost() const override { return 30; }

  private:
    Rng rng_;
};

} // namespace cohmeleon::policy

#endif // COHMELEON_POLICY_RANDOM_POLICY_HH

/**
 * @file
 * The Fixed policies of Section 4.3: a design-time choice of one
 * coherence mode, either homogeneous (one mode for every accelerator,
 * representing nearly all previous work) or heterogeneous (one mode
 * per accelerator type, built by design-time profiling — see
 * policy/profiling.hh).
 */

#ifndef COHMELEON_POLICY_FIXED_HH
#define COHMELEON_POLICY_FIXED_HH

#include <map>
#include <string>

#include "policy/policy.hh"

namespace cohmeleon::policy
{

/** Fixed homogeneous policy: the same mode for every invocation. */
class FixedPolicy : public rt::CoherencePolicy
{
  public:
    explicit FixedPolicy(coh::CoherenceMode mode);

    coh::CoherenceMode decide(const rt::DecisionContext &ctx,
                              std::uint64_t &tagOut) override;
    std::string_view name() const override { return name_; }
    Cycles decisionCost() const override { return 10; }

    coh::CoherenceMode mode() const { return mode_; }

  private:
    coh::CoherenceMode mode_;
    std::string name_;
};

/** Fixed heterogeneous policy: a per-accelerator-type mode table. */
class FixedHeterogeneousPolicy : public rt::CoherencePolicy
{
  public:
    explicit FixedHeterogeneousPolicy(
        std::map<std::string, coh::CoherenceMode> table,
        coh::CoherenceMode fallback = coh::CoherenceMode::kNonCohDma);

    coh::CoherenceMode decide(const rt::DecisionContext &ctx,
                              std::uint64_t &tagOut) override;
    std::string_view name() const override { return "fixed-hetero"; }
    Cycles decisionCost() const override { return 15; }

    const std::map<std::string, coh::CoherenceMode> &table() const
    {
        return table_;
    }

  private:
    std::map<std::string, coh::CoherenceMode> table_;
    coh::CoherenceMode fallback_;
};

} // namespace cohmeleon::policy

#endif // COHMELEON_POLICY_FIXED_HH

/**
 * @file
 * Common helpers for coherence-selection policies, plus a scriptable
 * policy used by the profiler and by tests.
 */

#ifndef COHMELEON_POLICY_POLICY_HH
#define COHMELEON_POLICY_POLICY_HH

#include "coh/coherence_mode.hh"
#include "rt/runtime.hh"

namespace cohmeleon::policy
{

/**
 * Resolve @p wanted against the tile's available modes: if available
 * it is returned unchanged, otherwise the nearest mode in hardware-
 * coherence degree is chosen (fully-coherent degrades to coherent
 * DMA, and so on).
 */
coh::CoherenceMode fallbackMode(coh::CoherenceMode wanted,
                                coh::ModeMask avail);

/** A policy that returns whatever mode it was last told to return. */
class ScriptedPolicy : public rt::CoherencePolicy
{
  public:
    explicit ScriptedPolicy(
        coh::CoherenceMode mode = coh::CoherenceMode::kNonCohDma)
        : mode_(mode)
    {}

    void setMode(coh::CoherenceMode mode) { mode_ = mode; }

    coh::CoherenceMode
    decide(const rt::DecisionContext &ctx, std::uint64_t &tagOut) override
    {
        tagOut = 0;
        return fallbackMode(mode_, ctx.availableModes);
    }

    std::string_view name() const override { return "scripted"; }
    Cycles decisionCost() const override { return 20; }

  private:
    coh::CoherenceMode mode_;
};

} // namespace cohmeleon::policy

#endif // COHMELEON_POLICY_POLICY_HH

#include "policy/profiling.hh"

#include <algorithm>
#include <limits>

#include "policy/policy.hh"
#include "rt/runtime.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace cohmeleon::policy
{

namespace
{

/** Run one isolated invocation; @return wall cycles and DDR delta. */
ProfileSample
measureOne(soc::Soc &soc, AccId acc, coh::CoherenceMode mode,
           std::uint64_t footprint)
{
    soc.reset();
    ScriptedPolicy scripted(mode);
    rt::EspRuntime runtime(soc, scripted);

    mem::Allocation alloc = soc.allocator().allocate(footprint);

    // Application-style warm-up: the CPU initializes the data.
    const Cycles warmDone =
        soc.cpuWriteRange(soc.eq().now(), 0, alloc, footprint);

    ProfileSample sample;
    sample.instance = soc.accelerator(acc).config().name;
    sample.type = soc.accelerator(acc).config().typeName;
    sample.mode = mode;
    sample.footprintBytes = footprint;

    bool finished = false;
    soc.eq().scheduleAt(warmDone, [&] {
        rt::InvocationRequest req;
        req.acc = acc;
        req.footprintBytes = footprint;
        req.data = &alloc;
        runtime.invoke(0, req, [&](const rt::InvocationRecord &rec) {
            sample.wallCycles = rec.wallCycles;
            sample.ddrMonitorDelta = rec.ddrMonitorDelta;
            finished = true;
        });
    });
    soc.eq().run();
    panic_if(!finished, "profiling invocation never completed");

    soc.allocator().free(alloc);
    return sample;
}

} // namespace

ProfileResult
profileAccelerators(soc::Soc &soc, std::vector<std::uint64_t> footprints)
{
    if (footprints.empty()) {
        const auto &cfg = soc.config();
        footprints = {
            cfg.accL2Bytes / 2,       // small: fits in the private cache
            cfg.llcSliceBytes / 2,    // medium: fits in one LLC slice
            cfg.totalLlcBytes() * 2,  // large: exceeds the whole LLC
        };
    }

    ProfileResult result;

    for (AccId acc = 0; acc < soc.numAccs(); ++acc) {
        const std::string instance =
            soc.accelerator(acc).config().name;
        double bestScore = std::numeric_limits<double>::infinity();
        coh::CoherenceMode best = coh::CoherenceMode::kNonCohDma;

        // wall[mode][sweep index]
        std::vector<std::vector<double>> wall(
            coh::kNumModes, std::vector<double>(footprints.size()));

        for (coh::CoherenceMode mode : coh::kAllModes) {
            if (!coh::maskHas(soc.bridge(acc).availableModes(), mode))
                continue;
            for (std::size_t f = 0; f < footprints.size(); ++f) {
                ProfileSample s =
                    measureOne(soc, acc, mode, footprints[f]);
                wall[static_cast<unsigned>(mode)][f] =
                    static_cast<double>(s.wallCycles);
                result.samples.push_back(std::move(s));
            }
        }

        // Normalize each sweep point by the best mode there, then
        // score a mode by the geometric mean of its ratios.
        for (coh::CoherenceMode mode : coh::kAllModes) {
            if (!coh::maskHas(soc.bridge(acc).availableModes(), mode))
                continue;
            std::vector<double> ratios;
            for (std::size_t f = 0; f < footprints.size(); ++f) {
                double bestAt =
                    std::numeric_limits<double>::infinity();
                for (coh::CoherenceMode m2 : coh::kAllModes) {
                    const double w = wall[static_cast<unsigned>(m2)][f];
                    if (w > 0.0)
                        bestAt = std::min(bestAt, w);
                }
                ratios.push_back(
                    wall[static_cast<unsigned>(mode)][f] / bestAt);
            }
            const double score = geometricMean(ratios);
            if (score < bestScore) {
                bestScore = score;
                best = mode;
            }
        }
        result.bestMode[instance] = best;
    }
    return result;
}

} // namespace cohmeleon::policy

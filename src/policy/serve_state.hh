/**
 * @file
 * Persistent state of a serving session: the published (serving)
 * model plus, when the background trainer was ahead of the decision
 * loop at drain time, the staged next-generation model.
 *
 * A drained serve process saves both live buffers so a restart loses
 * no training work: the serving model becomes the new session's
 * generation 0 and the staged model (when present) is published as
 * generation 1 without retraining. Like PolicyCheckpoint, the format
 * is versioned line-oriented text with max-precision doubles —
 * load(save(x)) == x exactly, and two states are byte-identical iff
 * they are the same state.
 *
 * Format history: v1 (PR 9) carried bare Q-table blocks; v2 (this PR)
 * adds a "model <spec>" line (rl::ModelSpec canonical text) and
 * backend-specific model blocks. v1 streams migrate to tabular —
 * their Q-table block is the v2 tabular block, byte for byte.
 */

#ifndef COHMELEON_POLICY_SERVE_STATE_HH
#define COHMELEON_POLICY_SERVE_STATE_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "rl/learned_model.hh"

namespace cohmeleon::policy
{

/** Serving + staging snapshot of a drained serve session. */
struct ServeState
{
    static constexpr unsigned kVersion = 2;
    static constexpr unsigned kOldestVersion = 1;

    /** Generation the serving model had reached when saved. */
    std::uint64_t servingGen = 0;
    rl::Model serving;

    /** Present when the trainer had staged generation
     *  servingGen + 1 that serving never consumed. */
    bool hasStaging = false;
    rl::Model staging;

    void save(std::ostream &os) const;

    /** @throws FatalError on wrong magic, an unsupported (future)
     *          version, an unknown model backend, or a malformed
     *          stream */
    static ServeState load(std::istream &is);

    /** Atomic file write (temp + rename). @throws FatalError */
    void saveFile(const std::string &path) const;

    /** @throws FatalError when the file is missing or malformed */
    static ServeState loadFile(const std::string &path);

    /** The exact bytes saveFile() writes. */
    std::string serialized() const;
};

} // namespace cohmeleon::policy

#endif // COHMELEON_POLICY_SERVE_STATE_HH

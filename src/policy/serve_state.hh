/**
 * @file
 * Persistent state of a serving session: the published (serving)
 * Q-table plus, when the background trainer was ahead of the decision
 * loop at drain time, the staged next-generation table.
 *
 * A drained serve process saves both live buffers so a restart loses
 * no training work: the serving table becomes the new session's
 * generation 0 and the staged table (when present) is published as
 * generation 1 without retraining. Like PolicyCheckpoint, the format
 * is versioned line-oriented text with max-precision doubles —
 * load(save(x)) == x exactly, and two states are byte-identical iff
 * they are the same state.
 */

#ifndef COHMELEON_POLICY_SERVE_STATE_HH
#define COHMELEON_POLICY_SERVE_STATE_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "rl/qtable.hh"

namespace cohmeleon::policy
{

/** Serving + staging snapshot of a drained serve session. */
struct ServeState
{
    static constexpr unsigned kVersion = 1;

    /** Generation the serving table had reached when saved. */
    std::uint64_t servingGen = 0;
    rl::QTable serving;

    /** Present when the trainer had staged generation
     *  servingGen + 1 that serving never consumed. */
    bool hasStaging = false;
    rl::QTable staging;

    void save(std::ostream &os) const;

    /** @throws FatalError on wrong magic, unsupported version, or a
     *          malformed stream */
    static ServeState load(std::istream &is);

    /** Atomic file write (temp + rename). @throws FatalError */
    void saveFile(const std::string &path) const;

    /** @throws FatalError when the file is missing or malformed */
    static ServeState loadFile(const std::string &path);

    /** The exact bytes saveFile() writes. */
    std::string serialized() const;
};

} // namespace cohmeleon::policy

#endif // COHMELEON_POLICY_SERVE_STATE_HH

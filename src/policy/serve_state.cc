#include "policy/serve_state.hh"

#include <array>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "rl/state_encoder.hh"
#include "sim/atomic_file.hh"
#include "sim/logging.hh"

namespace cohmeleon::policy
{

namespace
{

constexpr const char *kMagic = "cohmeleon-serve-state";

template <typename T>
T
expect(std::istream &is, const char *what)
{
    T value{};
    is >> value;
    fatalIf(!is, "serve state truncated or unparseable at ", what);
    return value;
}

void
expectKeyword(std::istream &is, const char *keyword)
{
    const std::string got = expect<std::string>(is, keyword);
    fatalIf(got != keyword, "malformed serve state: expected '",
            keyword, "', got '", got, "'");
}

/** Checkpoint-style table block: per-entry values then visits. */
void
saveTable(std::ostream &os, const rl::QTable &table)
{
    os << "qtable " << rl::StateTuple::kNumStates << ' '
       << rl::kNumActions << '\n';
    for (unsigned s = 0; s < rl::StateTuple::kNumStates; ++s) {
        for (unsigned a = 0; a < rl::kNumActions; ++a)
            os << table.q(s, a) << ' ';
        for (unsigned a = 0; a < rl::kNumActions; ++a)
            os << table.visits(s, a)
               << (a + 1 < rl::kNumActions ? ' ' : '\n');
    }
}

rl::QTable
loadTable(std::istream &is)
{
    expectKeyword(is, "qtable");
    const unsigned states = expect<unsigned>(is, "state count");
    const unsigned actions = expect<unsigned>(is, "action count");
    fatalIf(states != rl::StateTuple::kNumStates ||
                actions != rl::kNumActions,
            "serve state Q-table dimensions ", states, "x", actions,
            " do not match the ", rl::StateTuple::kNumStates, "x",
            rl::kNumActions, " state space");
    rl::QTable table;
    for (unsigned s = 0; s < states; ++s) {
        std::array<double, rl::kNumActions> q{};
        for (unsigned a = 0; a < actions; ++a) {
            q[a] = expect<double>(is, "Q-value");
            fatalIf(!std::isfinite(q[a]),
                    "non-finite Q-value in serve state at state ", s,
                    " action ", a);
        }
        for (unsigned a = 0; a < actions; ++a) {
            const std::uint64_t visits =
                expect<std::uint64_t>(is, "visit count");
            table.setEntry(s, a, q[a], visits);
        }
    }
    return table;
}

} // namespace

void
ServeState::save(std::ostream &os) const
{
    os.precision(17);
    os << kMagic << ' ' << kVersion << '\n';
    os << "serving-gen " << servingGen << '\n';
    saveTable(os, serving);
    os << "staging " << (hasStaging ? 1 : 0) << '\n';
    if (hasStaging)
        saveTable(os, staging);
    os << "end\n";
}

ServeState
ServeState::load(std::istream &is)
{
    ServeState state;
    const std::string magic = expect<std::string>(is, "magic");
    fatalIf(magic != kMagic, "not a Cohmeleon serve state (magic '",
            magic, "')");
    const unsigned version = expect<unsigned>(is, "version");
    fatalIf(version != kVersion, "unsupported serve state version ",
            version, " (this build reads version ", kVersion, ")");
    expectKeyword(is, "serving-gen");
    state.servingGen = expect<std::uint64_t>(is, "serving generation");
    state.serving = loadTable(is);
    expectKeyword(is, "staging");
    const unsigned hasStaging = expect<unsigned>(is, "staging flag");
    fatalIf(hasStaging > 1, "malformed serve state: staging flag ",
            hasStaging);
    state.hasStaging = hasStaging == 1;
    if (state.hasStaging)
        state.staging = loadTable(is);
    expectKeyword(is, "end");
    return state;
}

void
ServeState::saveFile(const std::string &path) const
{
    atomicWriteFile(path, serialized());
}

ServeState
ServeState::loadFile(const std::string &path)
{
    std::ifstream is(path);
    fatalIf(!is, "cannot open serve state '", path, "'");
    try {
        return load(is);
    } catch (const FatalError &e) {
        fatal(path, ": ", e.what());
    }
}

std::string
ServeState::serialized() const
{
    std::ostringstream os;
    save(os);
    return os.str();
}

} // namespace cohmeleon::policy

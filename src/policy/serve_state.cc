#include "policy/serve_state.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/atomic_file.hh"
#include "sim/logging.hh"

namespace cohmeleon::policy
{

namespace
{

constexpr const char *kMagic = "cohmeleon-serve-state";

template <typename T>
T
expect(std::istream &is, const char *what)
{
    T value{};
    is >> value;
    fatalIf(!is, "serve state truncated or unparseable at ", what);
    return value;
}

void
expectKeyword(std::istream &is, const char *keyword)
{
    const std::string got = expect<std::string>(is, keyword);
    fatalIf(got != keyword, "malformed serve state: expected '",
            keyword, "', got '", got, "'");
}

} // namespace

void
ServeState::save(std::ostream &os) const
{
    panic_if(hasStaging && !(staging.spec() == serving.spec()),
             "serving and staging models must share one backend");
    os.precision(17);
    os << kMagic << ' ' << kVersion << '\n';
    os << "model " << rl::toString(serving.spec()) << '\n';
    os << "serving-gen " << servingGen << '\n';
    serving.save(os);
    os << "staging " << (hasStaging ? 1 : 0) << '\n';
    if (hasStaging)
        staging.save(os);
    os << "end\n";
}

ServeState
ServeState::load(std::istream &is)
{
    ServeState state;
    const std::string magic = expect<std::string>(is, "magic");
    fatalIf(magic != kMagic, "not a Cohmeleon serve state (magic '",
            magic, "')");
    const unsigned version = expect<unsigned>(is, "version");
    fatalIf(version < kOldestVersion || version > kVersion,
            "unsupported serve state version ", version,
            " (this build reads versions ", kOldestVersion,
            " through ", kVersion, ")");
    // v1 predates the model axis: its bare Q-table blocks load as
    // the tabular default, byte-compatibly.
    rl::ModelSpec spec;
    if (version >= 2) {
        expectKeyword(is, "model");
        try {
            spec = rl::modelSpecFromString(
                expect<std::string>(is, "model spec"));
        } catch (const FatalError &e) {
            fatal("malformed model in serve state: ", e.what());
        }
    }
    expectKeyword(is, "serving-gen");
    state.servingGen = expect<std::uint64_t>(is, "serving generation");
    state.serving = rl::Model(spec);
    state.serving.load(is);
    expectKeyword(is, "staging");
    const unsigned hasStaging = expect<unsigned>(is, "staging flag");
    fatalIf(hasStaging > 1, "malformed serve state: staging flag ",
            hasStaging);
    state.hasStaging = hasStaging == 1;
    if (state.hasStaging) {
        state.staging = rl::Model(spec);
        state.staging.load(is);
    }
    expectKeyword(is, "end");
    return state;
}

void
ServeState::saveFile(const std::string &path) const
{
    atomicWriteFile(path, serialized());
}

ServeState
ServeState::loadFile(const std::string &path)
{
    std::ifstream is(path);
    fatalIf(!is, "cannot open serve state '", path, "'");
    try {
        return load(is);
    } catch (const FatalError &e) {
        fatal(path, ": ", e.what());
    }
}

std::string
ServeState::serialized() const
{
    std::ostringstream os;
    save(os);
    return os.str();
}

} // namespace cohmeleon::policy

#include "policy/manual.hh"

namespace cohmeleon::policy
{

ManualPolicy::ManualPolicy(std::uint64_t extraSmallThreshold)
    : extraSmallThreshold_(extraSmallThreshold)
{
}

coh::CoherenceMode
ManualPolicy::decide(const rt::DecisionContext &ctx, std::uint64_t &tagOut)
{
    tagOut = 0;
    const rt::SystemStatus &st = *ctx.status;
    const std::uint64_t footprint = ctx.footprintBytes;

    coh::CoherenceMode choice;
    if (footprint <= extraSmallThreshold_) {
        choice = coh::CoherenceMode::kFullyCoh;
    } else if (footprint <= ctx.l2Bytes) {
        const unsigned cohDma =
            st.activeWithMode(coh::CoherenceMode::kCohDma);
        const unsigned fullyCoh = st.activeFullyCoherent();
        choice = cohDma > fullyCoh ? coh::CoherenceMode::kFullyCoh
                                   : coh::CoherenceMode::kCohDma;
    } else if (footprint + st.totalActiveFootprint() >
               ctx.totalLlcBytes) {
        choice = coh::CoherenceMode::kNonCohDma;
    } else {
        const unsigned nonCoh =
            st.activeWithMode(coh::CoherenceMode::kNonCohDma);
        choice = nonCoh >= 2 ? coh::CoherenceMode::kLlcCohDma
                             : coh::CoherenceMode::kCohDma;
    }
    return fallbackMode(choice, ctx.availableModes);
}

} // namespace cohmeleon::policy

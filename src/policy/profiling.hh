/**
 * @file
 * Design-time profiler backing the fixed-heterogeneous baseline.
 *
 * Per the paper (Section 4.3), the heterogeneous fixed policy chooses
 * each accelerator's mode "based on profiling the accelerator's
 * performance in each mode while sweeping the footprint of the
 * workload on different invocations". The profiler runs every
 * accelerator type of an SoC in isolation over a footprint sweep
 * under each coherence mode and picks, per type, the mode with the
 * best geometric-mean normalized execution time.
 */

#ifndef COHMELEON_POLICY_PROFILING_HH
#define COHMELEON_POLICY_PROFILING_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "coh/coherence_mode.hh"
#include "soc/soc.hh"

namespace cohmeleon::policy
{

/** One profiled data point. */
struct ProfileSample
{
    std::string instance; ///< accelerator instance name
    std::string type;     ///< preset/type name
    coh::CoherenceMode mode;
    std::uint64_t footprintBytes;
    Cycles wallCycles;
    std::uint64_t ddrMonitorDelta;
};

/** Full profiling result; the table is keyed by instance name. */
struct ProfileResult
{
    std::map<std::string, coh::CoherenceMode> bestMode;
    std::vector<ProfileSample> samples;
};

/**
 * Profile every accelerator instance of @p soc in isolation (per
 * instance, not per type: on the traffic-generator SoCs every
 * instance has its own communication profile).
 *
 * @param footprints sweep points; when empty, an S/M/L sweep derived
 *        from the SoC's cache sizes is used
 * @note resets @p soc between measurements
 */
ProfileResult profileAccelerators(
    soc::Soc &soc, std::vector<std::uint64_t> footprints = {});

} // namespace cohmeleon::policy

#endif // COHMELEON_POLICY_PROFILING_HH

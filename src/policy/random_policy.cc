#include "policy/random_policy.hh"

namespace cohmeleon::policy
{

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_(seed) {}

coh::CoherenceMode
RandomPolicy::decide(const rt::DecisionContext &ctx, std::uint64_t &tagOut)
{
    tagOut = 0;
    coh::CoherenceMode options[coh::kNumModes];
    unsigned n = 0;
    for (coh::CoherenceMode m : coh::kAllModes) {
        if (coh::maskHas(ctx.availableModes, m))
            options[n++] = m;
    }
    return options[rng_.uniformInt(n)];
}

} // namespace cohmeleon::policy

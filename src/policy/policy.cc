#include "policy/policy.hh"

#include "sim/logging.hh"

namespace cohmeleon::policy
{

coh::CoherenceMode
fallbackMode(coh::CoherenceMode wanted, coh::ModeMask avail)
{
    if (coh::maskHas(avail, wanted))
        return wanted;
    // Degrade along the hardware-coherence axis.
    static const coh::CoherenceMode order[] = {
        coh::CoherenceMode::kCohDma,
        coh::CoherenceMode::kLlcCohDma,
        coh::CoherenceMode::kNonCohDma,
        coh::CoherenceMode::kFullyCoh,
    };
    for (coh::CoherenceMode m : order) {
        if (coh::maskHas(avail, m))
            return m;
    }
    panic("tile supports no coherence mode at all");
}

} // namespace cohmeleon::policy

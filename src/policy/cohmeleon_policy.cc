#include "policy/cohmeleon_policy.hh"

#include <algorithm>
#include <cmath>

namespace cohmeleon::policy
{

CohmeleonPolicy::CohmeleonPolicy(CohmeleonParams params)
    : params_(params), agent_(params.agent)
{
}

rl::StateTuple
CohmeleonPolicy::senseState(const rt::DecisionContext &ctx)
{
    const rt::SystemStatus &st = *ctx.status;
    rl::StateInputs in;
    in.activeFullyCoh = st.activeFullyCoherent();
    in.avgNonCohPerTile = st.avgNonCohOnPartitions(ctx.partitions);
    in.avgToLlcPerTile = st.avgToLlcOnPartitions(ctx.partitions);
    in.avgTileFootprintBytes = static_cast<std::uint64_t>(
        st.avgActiveBytesOnPartitions(ctx.partitions));
    in.accFootprintBytes = ctx.footprintBytes;
    in.l2Bytes = ctx.l2Bytes;
    in.llcSliceBytes = ctx.llcSliceBytes;
    return rl::encodeState(in);
}

coh::CoherenceMode
CohmeleonPolicy::decide(const rt::DecisionContext &ctx,
                        std::uint64_t &tagOut)
{
    const rl::StateTuple state = senseState(ctx);
    const unsigned action =
        agent_.chooseAction(state.index(), ctx.availableModes);
    tagOut = static_cast<std::uint64_t>(state.index()) * rl::kNumActions +
             action;
    return static_cast<coh::CoherenceMode>(action);
}

rl::InvocationMeasure
CohmeleonPolicy::measureOf(const rt::InvocationRecord &rec)
{
    // Scale time and traffic by the footprint (in KB) as in
    // Section 4.2's exec(k,i) and mem(k,i). The denominator is
    // clamped to one KB: a zero footprint would divide by zero and a
    // sub-KB footprint would inflate the scaled measures by orders of
    // magnitude, distorting the per-accelerator minima that every
    // later reward is computed against.
    const double footprintKb = std::max(
        static_cast<double>(rec.footprintBytes) / 1024.0, 1.0);
    rl::InvocationMeasure m;
    m.execScaled = static_cast<double>(rec.wallCycles) / footprintKb;
    m.commRatio =
        rec.accTotalCycles > 0
            ? static_cast<double>(rec.accCommCycles) /
                  static_cast<double>(rec.accTotalCycles)
            : 0.0;
    m.memScaled = rec.ddrApprox / footprintKb;
    return m;
}

void
CohmeleonPolicy::feedback(const rt::InvocationRecord &rec)
{
    const unsigned state =
        static_cast<unsigned>(rec.policyTag / rl::kNumActions);
    const unsigned action =
        static_cast<unsigned>(rec.policyTag % rl::kNumActions);
    const rl::InvocationMeasure m = measureOf(rec);
    // Degenerate measurements (overflowed monitors, NaN attribution)
    // must not reach the learner; the tracker also guards itself, but
    // skipping here keeps the observation out of the history too.
    if (!std::isfinite(m.execScaled) || !std::isfinite(m.commRatio) ||
        !std::isfinite(m.memScaled))
        return;
    const double r = tracker_.reward(rec.acc, m, params_.weights);
    if (!std::isfinite(r))
        return;
    // The components are clamped to [0, 1], so r already is; saturate
    // defensively anyway — the Q-table must stay finite and bounded.
    agent_.learn(state, action, std::clamp(r, 0.0, 1.0));
}

} // namespace cohmeleon::policy

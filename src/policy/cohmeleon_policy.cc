#include "policy/cohmeleon_policy.hh"

#include <algorithm>
#include <cmath>

namespace cohmeleon::policy
{

CohmeleonPolicy::CohmeleonPolicy(CohmeleonParams params)
    : params_(params), agent_(params.agent)
{
}

rl::StateInputs
CohmeleonPolicy::senseInputs(const rt::DecisionContext &ctx)
{
    const rt::SystemStatus &st = *ctx.status;
    rl::StateInputs in;
    in.activeFullyCoh = st.activeFullyCoherent();
    in.avgNonCohPerTile = st.avgNonCohOnPartitions(ctx.partitions);
    in.avgToLlcPerTile = st.avgToLlcOnPartitions(ctx.partitions);
    in.avgTileFootprintBytes = static_cast<std::uint64_t>(
        st.avgActiveBytesOnPartitions(ctx.partitions));
    in.accFootprintBytes = ctx.footprintBytes;
    in.l2Bytes = ctx.l2Bytes;
    in.llcSliceBytes = ctx.llcSliceBytes;
    return in;
}

rl::StateTuple
CohmeleonPolicy::senseState(const rt::DecisionContext &ctx)
{
    return rl::encodeState(senseInputs(ctx));
}

coh::CoherenceMode
CohmeleonPolicy::decide(const rt::DecisionContext &ctx,
                        std::uint64_t &tagOut)
{
    const rl::ModelFeatures f =
        rl::ModelFeatures::fromInputs(senseInputs(ctx));
    const unsigned action = agent_.chooseAction(f, ctx.availableModes);
    if (agent_.params().model.kind == rl::ModelSpec::Kind::kTabular) {
        // The tag IS the (state, action) key — feedback recovers the
        // model entry from it alone, as it always has.
        tagOut = static_cast<std::uint64_t>(f.state) * rl::kNumActions +
                 action;
    } else {
        // Feature-based backends need the raw inputs back at feedback
        // time; park them under a fresh tag until the invocation
        // finishes. Tags are handed out in decision order, so the
        // scheme is as deterministic as the decisions themselves.
        tagOut = nextTag_++;
        pending_.emplace(tagOut, PendingDecision{f, action});
    }
    return static_cast<coh::CoherenceMode>(action);
}

rl::InvocationMeasure
CohmeleonPolicy::measureOf(const rt::InvocationRecord &rec)
{
    // Scale time and traffic by the footprint (in KB) as in
    // Section 4.2's exec(k,i) and mem(k,i). The denominator is
    // clamped to one KB: a zero footprint would divide by zero and a
    // sub-KB footprint would inflate the scaled measures by orders of
    // magnitude, distorting the per-accelerator minima that every
    // later reward is computed against.
    const double footprintKb = std::max(
        static_cast<double>(rec.footprintBytes) / 1024.0, 1.0);
    rl::InvocationMeasure m;
    m.execScaled = static_cast<double>(rec.wallCycles) / footprintKb;
    m.commRatio =
        rec.accTotalCycles > 0
            ? static_cast<double>(rec.accCommCycles) /
                  static_cast<double>(rec.accTotalCycles)
            : 0.0;
    m.memScaled = rec.ddrApprox / footprintKb;
    return m;
}

void
CohmeleonPolicy::feedback(const rt::InvocationRecord &rec)
{
    rl::ModelFeatures features;
    unsigned action = 0;
    if (rec.policyTag < kPendingTagBase) {
        features = rl::ModelFeatures::fromState(
            static_cast<unsigned>(rec.policyTag / rl::kNumActions));
        action = static_cast<unsigned>(rec.policyTag % rl::kNumActions);
    } else {
        const auto it = pending_.find(rec.policyTag);
        if (it == pending_.end())
            return; // not one of our decisions (stale/foreign tag)
        features = it->second.features;
        action = it->second.action;
        pending_.erase(it);
    }
    const rl::InvocationMeasure m = measureOf(rec);
    // Degenerate measurements (overflowed monitors, NaN attribution)
    // must not reach the learner; the tracker also guards itself, but
    // skipping here keeps the observation out of the history too.
    if (!std::isfinite(m.execScaled) || !std::isfinite(m.commRatio) ||
        !std::isfinite(m.memScaled))
        return;
    const double r = tracker_.reward(rec.acc, m, params_.weights);
    if (!std::isfinite(r))
        return;
    // The components are clamped to [0, 1], so r already is; saturate
    // defensively anyway — the model must stay finite and bounded.
    agent_.learn(features, action, std::clamp(r, 0.0, 1.0));
}

} // namespace cohmeleon::policy

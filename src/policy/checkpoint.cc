#include "policy/checkpoint.hh"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/atomic_file.hh"
#include "sim/logging.hh"

namespace cohmeleon::policy
{

namespace
{

constexpr const char *kMagic = "cohmeleon-checkpoint";

/** Read one labelled token and fail loudly when it is missing. */
template <typename T>
T
expect(std::istream &is, const char *what)
{
    T value{};
    is >> value;
    fatalIf(!is, "checkpoint truncated or unparseable at ", what);
    return value;
}

double
expectFinite(std::istream &is, const char *what)
{
    const double v = expect<double>(is, what);
    fatalIf(!std::isfinite(v), "non-finite value in checkpoint at ",
            what);
    return v;
}

void
expectKeyword(std::istream &is, const char *keyword)
{
    const std::string got = expect<std::string>(is, keyword);
    fatalIf(got != keyword, "malformed checkpoint: expected '",
            keyword, "', got '", got, "'");
}

} // namespace

PolicyCheckpoint
PolicyCheckpoint::capture(const CohmeleonPolicy &policy)
{
    PolicyCheckpoint c;
    c.weights = policy.params().weights;
    c.agent = policy.agent().params();
    c.iteration = policy.agent().iteration();
    c.frozen = policy.agent().frozen();
    c.rngState = policy.agent().rngState();
    c.model = policy.agent().model();
    c.tracker = policy.rewardTracker();
    return c;
}

std::unique_ptr<CohmeleonPolicy>
PolicyCheckpoint::makePolicy() const
{
    CohmeleonParams params;
    params.weights = weights;
    params.agent = agent;
    params.agent.model = model.spec();
    auto policy = std::make_unique<CohmeleonPolicy>(params);
    policy->agent().model() = model;
    policy->agent().setIteration(iteration);
    policy->agent().setRngState(rngState);
    if (frozen)
        policy->freeze();
    policy->rewardTracker() = tracker;
    return policy;
}

void
PolicyCheckpoint::save(std::ostream &os) const
{
    os.precision(17);
    os << kMagic << ' ' << kVersion << '\n';
    os << "weights " << weights.exec << ' ' << weights.comm << ' '
       << weights.mem << '\n';
    os << "agent " << agent.epsilon0 << ' ' << agent.alpha0 << ' '
       << agent.decayIterations << ' ' << agent.seed << ' '
       << iteration << ' ' << (frozen ? 1 : 0) << '\n';
    os << "explore " << rl::toString(agent.explore) << '\n';
    os << "merge " << rl::toString(merge) << '\n';
    os << "model " << rl::toString(model.spec()) << '\n';
    os << "rng " << rngState[0] << ' ' << rngState[1] << ' '
       << rngState[2] << ' ' << rngState[3] << '\n';
    model.save(os);
    const std::vector<rl::AccExtrema> history = tracker.snapshot();
    os << "tracker " << history.size() << '\n';
    for (const rl::AccExtrema &e : history) {
        os << e.acc << ' ' << e.minExec << ' ' << e.minComm << ' '
           << e.minMem << ' ' << e.maxMem << '\n';
    }
    os << "end\n";
}

PolicyCheckpoint
PolicyCheckpoint::load(std::istream &is)
{
    PolicyCheckpoint c;

    const std::string magic = expect<std::string>(is, "magic");
    fatalIf(magic != kMagic, "not a Cohmeleon checkpoint (magic '",
            magic, "')");
    const unsigned version = expect<unsigned>(is, "version");
    fatalIf(version < kOldestVersion || version > kVersion,
            "unsupported checkpoint version ", version,
            " (this build reads versions ", kOldestVersion,
            " through ", kVersion, ")");

    expectKeyword(is, "weights");
    c.weights.exec = expectFinite(is, "weights.exec");
    c.weights.comm = expectFinite(is, "weights.comm");
    c.weights.mem = expectFinite(is, "weights.mem");
    fatalIf(c.weights.exec < 0.0 || c.weights.comm < 0.0 ||
                c.weights.mem < 0.0 ||
                c.weights.exec + c.weights.comm + c.weights.mem <= 0.0,
            "invalid reward weights in checkpoint");

    expectKeyword(is, "agent");
    c.agent.epsilon0 = expectFinite(is, "agent.epsilon0");
    c.agent.alpha0 = expectFinite(is, "agent.alpha0");
    c.agent.decayIterations = expect<unsigned>(is, "agent.decay");
    c.agent.seed = expect<std::uint64_t>(is, "agent.seed");
    c.iteration = expect<unsigned>(is, "agent.iteration");
    const unsigned frozen = expect<unsigned>(is, "agent.frozen");
    fatalIf(frozen > 1, "invalid frozen flag in checkpoint");
    c.frozen = frozen == 1;
    fatalIf(c.agent.epsilon0 < 0.0 || c.agent.epsilon0 > 1.0 ||
                c.agent.alpha0 <= 0.0 || c.agent.alpha0 > 1.0 ||
                c.agent.decayIterations == 0,
            "invalid agent hyper-parameters in checkpoint");

    if (version >= 2) {
        // v2: the strategy axes. v1 streams predate them and migrate
        // to the defaults (the paper's linear decay, the PR-3
        // visit-weighted fold) — exactly the behavior they were
        // trained under.
        expectKeyword(is, "explore");
        try {
            c.agent.explore = rl::exploreSpecFromString(
                expect<std::string>(is, "explore spec"));
            expectKeyword(is, "merge");
            c.merge = rl::mergeSpecFromString(
                expect<std::string>(is, "merge spec"));
        } catch (const FatalError &e) {
            fatal("malformed strategy in checkpoint: ", e.what());
        }
    }

    if (version >= 3) {
        // v3: the model backend. v1/v2 streams predate the model axis
        // and stay on the tabular default they were trained as.
        expectKeyword(is, "model");
        try {
            c.agent.model = rl::modelSpecFromString(
                expect<std::string>(is, "model spec"));
        } catch (const FatalError &e) {
            fatal("malformed model in checkpoint: ", e.what());
        }
        c.model = rl::Model(c.agent.model);
    }

    expectKeyword(is, "rng");
    for (int i = 0; i < 4; ++i)
        c.rngState[i] = expect<std::uint64_t>(is, "rng state");
    fatalIf((c.rngState[0] | c.rngState[1] | c.rngState[2] |
             c.rngState[3]) == 0,
            "invalid (all-zero) RNG state in checkpoint");

    // The model block. A v1/v2 Q-table block (values + visit counts)
    // is byte-identical to the v3 tabular block, so one loader reads
    // every version.
    try {
        c.model.load(is);
    } catch (const FatalError &e) {
        fatal("malformed model block in checkpoint: ", e.what());
    }

    expectKeyword(is, "tracker");
    const auto entries = expect<std::size_t>(is, "tracker size");
    // One entry per accelerator: any real SoC has a handful. Validate
    // before reserving — a corrupt (huge or sign-wrapped) count must
    // throw FatalError, not std::length_error out of reserve().
    constexpr std::size_t kMaxTrackerEntries = 1u << 20;
    fatalIf(entries > kMaxTrackerEntries,
            "implausible tracker entry count ", entries,
            " in checkpoint");
    std::vector<rl::AccExtrema> history;
    history.reserve(entries);
    for (std::size_t i = 0; i < entries; ++i) {
        rl::AccExtrema e;
        e.acc = expect<std::uint32_t>(is, "tracker acc id");
        fatalIf(!history.empty() && e.acc <= history.back().acc,
                "tracker entries out of order in checkpoint");
        e.minExec = expectFinite(is, "tracker minExec");
        e.minComm = expectFinite(is, "tracker minComm");
        e.minMem = expectFinite(is, "tracker minMem");
        e.maxMem = expectFinite(is, "tracker maxMem");
        fatalIf(e.minMem > e.maxMem,
                "tracker memory extrema inverted in checkpoint");
        history.push_back(e);
    }
    c.tracker.restore(history);

    expectKeyword(is, "end");
    std::string trailing;
    is >> trailing;
    fatalIf(!trailing.empty(),
            "trailing garbage after checkpoint end marker");
    return c;
}

void
PolicyCheckpoint::saveFile(const std::string &path) const
{
    // Atomic temp+rename: a crash (or a full disk) mid-save must
    // never truncate a checkpoint that trained for hours — the old
    // file survives untouched until the new one is durable.
    try {
        atomicWriteFile(path, serialized());
    } catch (const FatalError &e) {
        fatal("cannot write checkpoint '", path, "': ", e.what());
    }
}

PolicyCheckpoint
PolicyCheckpoint::loadFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open checkpoint '", path, "'");
    return load(in);
}

std::string
PolicyCheckpoint::serialized() const
{
    std::ostringstream os;
    save(os);
    return os.str();
}

} // namespace cohmeleon::policy

/**
 * @file
 * Deterministic open-loop request trace for the serving loop.
 *
 * The whole trace — which tenant each request belongs to, which
 * accelerator it invokes with what footprint, its virtual arrival
 * time, and which model generation must decide it — is generated up
 * front as a pure function of (ServeSpec, SoC preset). Workers then
 * claim trace slots in sequence order, so replaying the same spec
 * produces the same decisions at any thread count: nothing about a
 * request depends on when or on which thread it is served.
 *
 * Tenant draws come from one stream RNG (seeded by spec.seed); each
 * request's content comes from its own RNG derived via
 * experimentSeed(tenant stream, index within tenant), mirroring how
 * the sweep drivers isolate per-experiment streams. `random` tenants
 * draw an accelerator uniformly and a footprint from the standard
 * size-class mix; figure tenants replay their app's invocations
 * round-robin.
 *
 * The generation schedule is the determinism half of the hot-swap
 * contract: request seq is decided by generation seq / swapInterval
 * (capped at the final generation), never by "whichever table is
 * current", so the swap points sit at the same request boundaries in
 * every run.
 */

#ifndef COHMELEON_SERVE_REQUEST_GEN_HH
#define COHMELEON_SERVE_REQUEST_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/serve_spec.hh"
#include "soc/soc.hh"

namespace cohmeleon::serve
{

/** One request in the arrival stream. */
struct ServeRequest
{
    std::uint64_t seq = 0;         ///< position in the stream
    unsigned tenant = 0;           ///< index into spec.tenants
    std::uint64_t seqInTenant = 0; ///< position in the tenant's stream
    std::string accName;           ///< target accelerator instance
    std::uint64_t footprintBytes = 0;
    /** Virtual arrival offset in seconds (pacing only; 0 when the
     *  stream is unpaced). Never influences a decision. */
    double arrivalSec = 0.0;
    /** Model generation that must decide this request. */
    std::uint64_t generation = 0;
};

/** Generation of request @p seq under @p spec's swap schedule:
 *  seq / swapInterval, capped at the last generation a full run
 *  reaches. */
std::uint64_t generationOf(std::uint64_t seq, const ServeSpec &spec);

/** Number of model generations a full run of @p spec serves
 *  (generation 0 plus one per complete swap interval boundary). */
std::uint64_t generationCount(const ServeSpec &spec);

/**
 * Generate the full trace for @p spec. @p soc provides the
 * accelerator name table (any Soc built from the spec's preset).
 * @throws FatalError when a figure tenant's app references an
 *         accelerator the serving SoC does not have
 */
std::vector<ServeRequest> generateRequestTrace(const ServeSpec &spec,
                                               const soc::Soc &soc);

/** acquire() quota per generation for the swap-table handle: how
 *  many of @p trace's requests each generation decides. */
std::vector<std::uint64_t>
generationReadQuota(const std::vector<ServeRequest> &trace,
                    const ServeSpec &spec);

} // namespace cohmeleon::serve

#endif // COHMELEON_SERVE_REQUEST_GEN_HH

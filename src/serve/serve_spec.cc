#include "serve/serve_spec.hh"

#include <cctype>
#include <cmath>
#include <sstream>

#include "app/config_parser.hh"
#include "app/scenario.hh"
#include "sim/atomic_file.hh"
#include "sim/logging.hh"
#include "soc/soc_presets.hh"

namespace cohmeleon::serve
{

namespace
{

// The scanner and typed value parsers are the shared config plumbing
// in config_parser.hh; their "line N: ..." diagnostics gain the
// "serve spec " prefix via the catch-rethrow in parseServeSpecString.
using app::lineFatal;
using app::parseDoubleAt;
using app::parseU32At;
using app::parseU64At;
using app::splitList;
using app::trimText;

std::string
formatDouble(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

} // namespace

bool
ServeSpec::operator==(const ServeSpec &o) const
{
    return name == o.name && soc == o.soc && requests == o.requests &&
           threads == o.threads && swapInterval == o.swapInterval &&
           trainIterations == o.trainIterations &&
           trainShards == o.trainShards && merge == o.merge &&
           explore == o.explore && model == o.model &&
           weights.exec == o.weights.exec &&
           weights.comm == o.weights.comm &&
           weights.mem == o.weights.mem && tenants == o.tenants &&
           arrivalRate == o.arrivalRate && seed == o.seed &&
           trainSeed == o.trainSeed && agentSeed == o.agentSeed &&
           loadState == o.loadState && saveState == o.saveState &&
           decisionLog == o.decisionLog;
}

std::string
checkTenantSource(const std::string &source)
{
    if (source == "random")
        return "";
    for (const std::string &n : app::figureAppNames())
        if (n == source)
            return "";
    std::string known = "random";
    for (const std::string &n : app::figureAppNames())
        known += ", " + n;
    return "unknown tenant source '" + source + "' (known: " + known +
           ")";
}

void
labelTenants(ServeSpec &spec)
{
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        std::string label = "t";
        label += std::to_string(i);
        label += '-';
        label += spec.tenants[i].source;
        spec.tenants[i].label = std::move(label);
    }
}

void
validateServeSpec(const ServeSpec &spec)
{
    fatalIf(!soc::isKnownSocName(spec.soc), "serve spec: unknown SoC '",
            spec.soc, "' (known: ", soc::knownSocNamesText(), ")");
    fatalIf(spec.requests == 0, "serve spec: requests must be > 0");
    fatalIf(spec.threads == 0, "serve spec: threads must be > 0");
    fatalIf(spec.threads > 256,
            "serve spec: threads must be <= 256, got ", spec.threads);
    fatalIf(spec.swapInterval == 0,
            "serve spec: swap-interval must be > 0");
    fatalIf(spec.trainIterations == 0, "serve spec: train must be > 0");
    fatalIf(spec.trainShards == 0, "serve spec: shards must be > 0");
    fatalIf(spec.tenants.empty(),
            "serve spec: the tenant mix must not be empty");
    for (const TenantSpec &t : spec.tenants) {
        const std::string diag = checkTenantSource(t.source);
        fatalIf(!diag.empty(), "serve spec: ", diag);
        fatalIf(!(t.weight > 0.0) || !std::isfinite(t.weight),
                "serve spec: tenant weight for '", t.source,
                "' must be a positive finite number");
    }
    fatalIf(!(spec.arrivalRate >= 0.0) ||
                !std::isfinite(spec.arrivalRate),
            "serve spec: arrival-rate must be a finite number >= 0");
}

namespace
{

/** The key dispatch behind parseServeSpecString(); throws with bare
 *  "line N: ..." diagnostics (the caller adds the family prefix). */
ServeSpec
parseServeSpecLines(const std::string &text, bool &sawTenants,
                    std::vector<double> &tenantWeights,
                    unsigned &tenantWeightsLine)
{
    ServeSpec spec;
    spec.tenants.clear();

    std::istringstream is(text);
    for (const app::ConfigLine &l : app::scanConfigLines(is)) {
        if (l.isSection)
            lineFatal(l.no, "serve specs have no sections (put the "
                            "keys at top level)");
        const unsigned no = l.no;
        const std::string &key = l.key;
        const std::string &value = l.value;

        if (key == "serve") {
            if (value.empty())
                lineFatal(no, "serve needs a name");
            spec.name = value;
        } else if (key == "soc") {
            if (!soc::isKnownSocName(value))
                lineFatal(no, "unknown SoC '" + value + "' (known: " +
                                  soc::knownSocNamesText() + ")");
            spec.soc = value;
        } else if (key == "requests") {
            spec.requests = parseU64At(value, no);
        } else if (key == "threads") {
            spec.threads = parseU32At(value, no);
        } else if (key == "swap-interval") {
            spec.swapInterval = parseU64At(value, no);
        } else if (key == "train") {
            spec.trainIterations = parseU32At(value, no);
        } else if (key == "shards") {
            spec.trainShards = parseU32At(value, no);
        } else if (key == "merge") {
            const std::string diag = rl::checkMergeSpecText(value);
            if (!diag.empty())
                lineFatal(no, diag);
            spec.merge = rl::mergeSpecFromString(value);
        } else if (key == "explore") {
            const std::string diag = rl::checkExploreSpecText(value);
            if (!diag.empty())
                lineFatal(no, diag);
            spec.explore = rl::exploreSpecFromString(value);
        } else if (key == "model") {
            const std::string diag = rl::checkModelSpecText(value);
            if (!diag.empty())
                lineFatal(no, diag);
            spec.model = rl::modelSpecFromString(value);
        } else if (key == "reward-weights") {
            const std::vector<std::string> parts = splitList(value, ',');
            if (parts.size() != 3)
                lineFatal(no, "reward-weights needs three values "
                              "(exec, comm, mem), got " +
                                  std::to_string(parts.size()));
            spec.weights.exec = parseDoubleAt(parts[0], no);
            spec.weights.comm = parseDoubleAt(parts[1], no);
            spec.weights.mem = parseDoubleAt(parts[2], no);
        } else if (key == "tenants") {
            sawTenants = true;
            spec.tenants.clear();
            for (const std::string &part : splitList(value, ',')) {
                const std::string src = trimText(part);
                const std::string diag = checkTenantSource(src);
                if (!diag.empty())
                    lineFatal(no, diag);
                TenantSpec t;
                t.source = src;
                spec.tenants.push_back(std::move(t));
            }
            if (spec.tenants.empty())
                lineFatal(no, "tenants needs at least one source");
        } else if (key == "tenant-weights") {
            tenantWeights.clear();
            tenantWeightsLine = no;
            for (const std::string &part : splitList(value, ','))
                tenantWeights.push_back(parseDoubleAt(part, no));
        } else if (key == "arrival-rate") {
            spec.arrivalRate = parseDoubleAt(value, no);
        } else if (key == "seed") {
            spec.seed = parseU64At(value, no);
        } else if (key == "train-seed") {
            spec.trainSeed = parseU64At(value, no);
        } else if (key == "agent-seed") {
            spec.agentSeed = parseU64At(value, no);
        } else if (key == "load-state") {
            spec.loadState = value;
        } else if (key == "save-state") {
            spec.saveState = value;
        } else if (key == "decision-log") {
            spec.decisionLog = value;
        } else {
            lineFatal(no, "unknown serve key '" + key + "'");
        }
    }
    return spec;
}

} // namespace

ServeSpec
parseServeSpecString(const std::string &text)
{
    ServeSpec spec;
    bool sawTenants = false;
    std::vector<double> tenantWeights;
    unsigned tenantWeightsLine = 0;
    try {
        spec = parseServeSpecLines(text, sawTenants, tenantWeights,
                                   tenantWeightsLine);
        if (!sawTenants)
            spec.tenants.resize(2); // the default mix: random, random
        if (!tenantWeights.empty()) {
            if (tenantWeights.size() != spec.tenants.size())
                lineFatal(tenantWeightsLine,
                          "tenant-weights has " +
                              std::to_string(tenantWeights.size()) +
                              " entries for " +
                              std::to_string(spec.tenants.size()) +
                              " tenants");
            for (std::size_t i = 0; i < tenantWeights.size(); ++i)
                spec.tenants[i].weight = tenantWeights[i];
        }
    } catch (const FatalError &e) {
        fatal("serve spec ", e.what());
    }
    labelTenants(spec);
    validateServeSpec(spec);
    return spec;
}

ServeSpec
parseServeSpecFile(const std::string &path)
{
    try {
        return parseServeSpecString(readFile(path));
    } catch (const FatalError &e) {
        fatal(path, ": ", e.what());
    }
}

std::string
serializeServeSpec(const ServeSpec &spec)
{
    std::ostringstream os;
    os << "serve = " << spec.name << '\n';
    os << "soc = " << spec.soc << '\n';
    os << "requests = " << spec.requests << '\n';
    os << "threads = " << spec.threads << '\n';
    os << "swap-interval = " << spec.swapInterval << '\n';
    os << "train = " << spec.trainIterations << '\n';
    os << "shards = " << spec.trainShards << '\n';
    os << "merge = " << rl::toString(spec.merge) << '\n';
    os << "explore = " << rl::toString(spec.explore) << '\n';
    os << "model = " << rl::toString(spec.model) << '\n';
    os << "reward-weights = " << formatDouble(spec.weights.exec) << ", "
       << formatDouble(spec.weights.comm) << ", "
       << formatDouble(spec.weights.mem) << '\n';
    os << "tenants = ";
    for (std::size_t i = 0; i < spec.tenants.size(); ++i)
        os << (i ? ", " : "") << spec.tenants[i].source;
    os << '\n';
    os << "tenant-weights = ";
    for (std::size_t i = 0; i < spec.tenants.size(); ++i)
        os << (i ? ", " : "") << formatDouble(spec.tenants[i].weight);
    os << '\n';
    os << "arrival-rate = " << formatDouble(spec.arrivalRate) << '\n';
    os << "seed = " << spec.seed << '\n';
    os << "train-seed = " << spec.trainSeed << '\n';
    os << "agent-seed = " << spec.agentSeed << '\n';
    if (!spec.loadState.empty())
        os << "load-state = " << spec.loadState << '\n';
    if (!spec.saveState.empty())
        os << "save-state = " << spec.saveState << '\n';
    if (!spec.decisionLog.empty())
        os << "decision-log = " << spec.decisionLog << '\n';
    return os.str();
}

} // namespace cohmeleon::serve

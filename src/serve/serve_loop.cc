#include "serve/serve_loop.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "app/experiment.hh"
#include "app/fault.hh"
#include "app/parallel_runner.hh"
#include "app/training_driver.hh"
#include "policy/cohmeleon_policy.hh"
#include "rl/table_handle.hh"
#include "rt/runtime.hh"
#include "sim/atomic_file.hh"
#include "sim/logging.hh"
#include "sim/wall_timer.hh"
#include "soc/soc_presets.hh"

namespace cohmeleon::serve
{

namespace
{

/**
 * Frozen greedy reader of one pinned model generation. Serving
 * never explores (exploration lives in the background training
 * shards), so decisions are a pure function of (request, model) —
 * no per-request RNG, nothing shared between workers, and the
 * decide() stopwatch stays outside every decision input. Works for
 * any learned-model backend: features are sensed once and handed to
 * the model whole, so tabular reads reproduce the historic Q-table
 * lookups bit-exactly while feature backends see the raw inputs.
 */
class ServingPolicy final : public rt::CoherencePolicy
{
  public:
    explicit ServingPolicy(const rl::Model &model) : model_(model) {}

    coh::CoherenceMode
    decide(const rt::DecisionContext &ctx,
           std::uint64_t &tagOut) override
    {
        const WallTimer timer;
        const rl::ModelFeatures f = rl::ModelFeatures::fromInputs(
            policy::CohmeleonPolicy::senseInputs(ctx));
        const unsigned state = f.state;
        const unsigned action = model_.bestAction(f, ctx.availableModes);
        tagOut = static_cast<std::uint64_t>(state) * rl::kNumActions +
                 action;
        if (!decided_) {
            state_ = state;
            action_ = action;
            decided_ = true;
        }
        decideSeconds_ += timer.seconds();
        return static_cast<coh::CoherenceMode>(action);
    }

    std::string_view name() const override { return "cohmeleon-serve"; }

    unsigned state() const { return state_; }
    unsigned action() const { return action_; }
    double decideSeconds() const { return decideSeconds_; }

  private:
    const rl::Model &model_;
    unsigned state_ = 0;
    unsigned action_ = 0;
    bool decided_ = false;
    double decideSeconds_ = 0.0;
};

/** The single-invocation application one request simulates. */
app::AppSpec
requestApp(const ServeRequest &req)
{
    app::ChainStep step;
    step.accName = req.accName;
    step.footprintBytes = req.footprintBytes;
    app::ThreadSpec thread;
    thread.chain.push_back(std::move(step));
    thread.loops = 1;
    app::PhaseSpec phase;
    phase.name = "serve";
    phase.threads.push_back(std::move(thread));
    app::AppSpec spec;
    spec.name = "req" + std::to_string(req.seq);
    spec.phases.push_back(std::move(phase));
    return spec;
}

/** Train generation @p gen's shard model (fresh, not yet folded).
 *  Serial on the calling (trainer) thread; the per-generation seeds
 *  make every generation's model a pure function of the spec. */
rl::Model
trainGenerationModel(const ServeSpec &spec, const soc::SocConfig &cfg,
                     std::uint64_t gen)
{
    app::TrainingOptions opts;
    opts.iterations = spec.trainIterations;
    opts.shards = spec.trainShards;
    opts.trainSeed = app::experimentSeed(spec.trainSeed, gen);
    opts.agentSeed = app::experimentSeed(spec.agentSeed, gen);
    opts.weights = spec.weights;
    opts.merge = spec.merge;
    opts.explore = spec.explore;
    opts.model = spec.model;
    app::ParallelRunner serial(1);
    app::TrainingDriver driver(serial);
    return driver.train(cfg, opts).checkpoint.model;
}

} // namespace

std::string
renderDecisionLog(const ServeSpec &spec,
                  const std::vector<ServeRequest> &trace,
                  const ServeResult &result)
{
    std::ostringstream os;
    os.precision(17);
    os << "cohmeleon-serve-log 1\n";
    os << "serve " << spec.name << '\n';
    os << "soc " << spec.soc << '\n';
    os << "seed " << spec.seed << '\n';
    os << "requests " << spec.requests << '\n';
    os << "swap-interval " << spec.swapInterval << '\n';
    os << "generations " << result.generations << '\n';
    os << "tenants ";
    for (std::size_t i = 0; i < spec.tenants.size(); ++i)
        os << (i ? "," : "") << spec.tenants[i].label;
    os << '\n';
    for (std::uint64_t seq = 0; seq < result.served; ++seq) {
        const RequestOutcome &o = result.outcomes[seq];
        const ServeRequest &req = trace[seq];
        os << "req " << seq << " tenant "
           << spec.tenants[o.tenant].label << " acc " << req.accName
           << " bytes " << req.footprintBytes << " gen "
           << o.generation << " state " << o.state << " mode "
           << coh::toString(o.mode) << " reward " << o.reward << '\n';
    }
    os << "end served " << result.served << '\n';
    return os.str();
}

ServeResult
runServe(const ServeSpec &spec)
{
    validateServeSpec(spec);
    const WallTimer sessionTimer;
    const soc::SocConfig cfg = soc::makeSocByName(spec.soc);
    const soc::Soc namingSoc(cfg); // accelerator name table + figure
                                   // tenant validation
    const std::vector<ServeRequest> trace =
        generateRequestTrace(spec, namingSoc);

    // Generation 0: a loaded serving checkpoint, or a synchronous
    // pre-train so the first decisions already come from a model.
    rl::Model initial(spec.model);
    bool hasPreStaged = false;
    rl::Model preStaged(spec.model);
    if (!spec.loadState.empty()) {
        const policy::ServeState loaded =
            policy::ServeState::loadFile(spec.loadState);
        fatalIf(!(loaded.serving.spec() == spec.model), "serve state '",
                spec.loadState, "' holds a '",
                rl::toString(loaded.serving.spec()),
                "' model but the spec serves '",
                rl::toString(spec.model), "'");
        initial = loaded.serving;
        hasPreStaged = loaded.hasStaging;
        if (hasPreStaged)
            preStaged = loaded.staging;
    } else {
        initial = trainGenerationModel(spec, cfg, 0);
    }

    ServeResult result;
    result.requested = spec.requests;
    result.generations = generationCount(spec);
    result.outcomes.resize(trace.size());
    result.tenants.resize(spec.tenants.size());
    for (std::size_t t = 0; t < spec.tenants.size(); ++t)
        result.tenants[t].label = spec.tenants[t].label;

    rl::SwapTableHandle handle(initial,
                               generationReadQuota(trace, spec));
    const std::uint64_t maxGen = result.generations - 1;

    std::atomic<std::uint64_t> cursor{0};
    std::atomic<bool> trainerStop{false};
    std::mutex errorMutex;
    std::string firstError;
    const auto recordError = [&](const std::string &what) {
        {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (firstError.empty())
                firstError = what;
        }
        app::requestCampaignStop();
    };

    // The pacing baseline: arrival offsets delay when a request
    // starts, but never reach a decision or the log.
    // determinism: allow(wall-clock, open-loop pacing baseline - delays work only, results stay pure functions of the spec)
    const auto runStart = std::chrono::steady_clock::now();

    // ---- background trainer: generations 1..maxGen ------------------
    std::thread trainer([&] {
        try {
            rl::Model current = initial;
            for (std::uint64_t gen = 1; gen <= maxGen; ++gen) {
                if (trainerStop.load(std::memory_order_relaxed))
                    break;
                if (gen == 1 && hasPreStaged) {
                    current = preStaged;
                } else {
                    rl::Model next = current;
                    next.merge(trainGenerationModel(spec, cfg, gen),
                               spec.merge);
                    current = std::move(next);
                }
                if (!handle.publish(gen, current))
                    break; // drain cancelled the remaining swaps
            }
        } catch (const std::exception &e) {
            recordError(std::string("serve trainer failed: ") +
                        e.what());
            handle.abortWaits();
        }
    });

    // ---- decision workers -------------------------------------------
    std::vector<LogHistogram> decisionLocal(spec.threads);
    std::vector<LogHistogram> serviceLocal(spec.threads);
    std::vector<std::thread> workers;
    workers.reserve(spec.threads);
    for (unsigned w = 0; w < spec.threads; ++w) {
        workers.emplace_back([&, w] {
            try {
                while (true) {
                    if (app::campaignStopRequested())
                        break;
                    const std::uint64_t seq = cursor.fetch_add(1);
                    if (seq >= trace.size())
                        break;
                    const ServeRequest &req = trace[seq];
                    if (spec.arrivalRate > 0.0) {
                        // Open-loop pacing: hold the request until
                        // its virtual arrival offset from runStart.
                        std::this_thread::sleep_until(
                            runStart + std::chrono::duration<double>(
                                           req.arrivalSec));
                    }
                    const rl::Model &model =
                        handle.acquire(req.generation);
                    ServingPolicy policy(model);
                    const WallTimer serviceTimer;
                    const app::AppResult run = app::runPolicyOnApp(
                        policy, cfg, requestApp(req),
                        /*collectRecords=*/true);
                    const double serviceSec = serviceTimer.seconds();
                    handle.release(req.generation);

                    panic_if(run.phases.size() != 1 ||
                                 run.phases[0].invocations.size() != 1,
                             "request app must produce exactly one "
                             "invocation");
                    const rt::InvocationRecord &rec =
                        run.phases[0].invocations[0];
                    RequestOutcome &out = result.outcomes[seq];
                    out.served = true;
                    out.tenant = req.tenant;
                    out.generation = req.generation;
                    out.state = policy.state();
                    out.action = policy.action();
                    out.mode = rec.mode;
                    out.acc = static_cast<std::uint32_t>(rec.acc);
                    out.footprintBytes = req.footprintBytes;
                    out.measure =
                        policy::CohmeleonPolicy::measureOf(rec);
                    decisionLocal[w].record(policy.decideSeconds());
                    serviceLocal[w].record(serviceSec);
                }
            } catch (const std::exception &e) {
                recordError(std::string("serve worker failed: ") +
                            e.what());
            }
        });
    }

    for (std::thread &t : workers)
        t.join();
    const bool interrupted = app::campaignStopRequested();

    // Nobody will acquire another generation: release the trainer
    // from swaps with no remaining readers, then reap it.
    trainerStop.store(true, std::memory_order_relaxed);
    handle.abortWaits();
    trainer.join();

    {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError.empty())
            fatal(firstError);
    }

    // ---- deterministic post-drain accounting ------------------------
    const std::uint64_t served = std::min<std::uint64_t>(
        cursor.load(), trace.size());
    result.served = served;
    result.interrupted = interrupted && served < trace.size();
    result.hotSwaps = handle.publishedGen();

    // Per-tenant attribution folds in trace order, so tenant reward
    // histories are independent of which worker served what.
    std::vector<rl::RewardTracker> trackers(spec.tenants.size());
    for (std::uint64_t seq = 0; seq < served; ++seq) {
        RequestOutcome &out = result.outcomes[seq];
        panic_if(!out.served,
                 "claimed request ", seq, " was never served");
        out.reward = trackers[out.tenant].reward(out.acc, out.measure,
                                                 spec.weights);
        result.tenants[out.tenant].served += 1;
        result.tenants[out.tenant].rewardSum += out.reward;
    }

    for (unsigned w = 0; w < spec.threads; ++w) {
        result.decisionLatency.merge(decisionLocal[w]);
        result.serviceLatency.merge(serviceLocal[w]);
    }

    // Serving + staging snapshot: the elder live buffer serves, the
    // younger (when the trainer ran ahead of the drain) is staged
    // for the next session's generation 1.
    const std::uint64_t published = result.hotSwaps;
    const std::uint64_t lastServedGen =
        served == 0 ? 0 : trace[served - 1].generation;
    if (published <= lastServedGen) {
        result.state.servingGen = published;
        result.state.serving = handle.tableAt(published);
    } else {
        result.state.servingGen = published - 1;
        result.state.serving = handle.tableAt(published - 1);
        result.state.hasStaging = true;
        result.state.staging = handle.tableAt(published);
    }

    result.decisionLog = renderDecisionLog(spec, trace, result);
    if (!spec.decisionLog.empty())
        atomicWriteFile(spec.decisionLog, result.decisionLog);
    if (!spec.saveState.empty())
        result.state.saveFile(spec.saveState);
    result.wallSeconds = sessionTimer.seconds();
    return result;
}

} // namespace cohmeleon::serve

/**
 * @file
 * The long-lived policy service: a multi-threaded decision loop over
 * the deterministic request trace, backed by the double-buffered
 * Q-table handle, with background training hot-swapping fresh models
 * in at fixed request boundaries.
 *
 * Execution shape:
 *
 *   - N worker threads claim trace slots from one atomic cursor (so
 *     the claimed set is always a sequence prefix), pin the request's
 *     assigned model generation via SwapTableHandle::acquire(), run
 *     the single-invocation request app on a fresh SoC (the same
 *     runPolicyOnApp() isolation the sweep drivers use), and record
 *     the outcome into the request's pre-sized slot — completion
 *     order never matters.
 *   - One trainer thread produces generations 1..G-1: per generation
 *     a sharded TrainingDriver run (serial, seeds derived from
 *     (seed, generation)) folds into the previous model under the
 *     spec's merge strategy, then publish() swaps it into service.
 *   - SIGINT/SIGTERM drain reuses the campaign latch: workers stop
 *     claiming, in-flight requests finish, the trainer is released
 *     from generations nobody will read, and everything measured so
 *     far is reported (exit code 130 at the CLI, like campaigns).
 *
 * Determinism: every decision is a pure function of (request,
 * generation table), the generation schedule is fixed by the spec,
 * and per-tenant rewards fold sequentially in trace order after the
 * drain — so the decision log is byte-identical at any thread count.
 * Wall-clock only touches latency stats (LogHistogram) and pacing,
 * never a decision.
 */

#ifndef COHMELEON_SERVE_SERVE_LOOP_HH
#define COHMELEON_SERVE_SERVE_LOOP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coh/coherence_mode.hh"
#include "policy/serve_state.hh"
#include "rl/reward.hh"
#include "serve/request_gen.hh"
#include "serve/serve_spec.hh"
#include "sim/histogram.hh"

namespace cohmeleon::serve
{

/** What serving one request decided and measured. */
struct RequestOutcome
{
    bool served = false;
    unsigned tenant = 0;
    std::uint64_t generation = 0; ///< model generation that decided
    unsigned state = 0;           ///< encoded Q-table row
    unsigned action = 0;          ///< chosen action index
    coh::CoherenceMode mode = coh::CoherenceMode::kNonCohDma;
    std::uint32_t acc = 0;        ///< target accelerator id
    std::uint64_t footprintBytes = 0;
    rl::InvocationMeasure measure; ///< reward inputs
    double reward = 0.0;           ///< per-tenant attributed reward
};

/** Per-tenant attribution totals. */
struct TenantOutcome
{
    std::string label;
    std::uint64_t served = 0;
    double rewardSum = 0.0;
};

/** Everything a serve session produced. */
struct ServeResult
{
    std::uint64_t requested = 0;
    std::uint64_t served = 0; ///< == requested unless interrupted
    bool interrupted = false;

    std::uint64_t generations = 0; ///< schedule length (>= 1)
    std::uint64_t hotSwaps = 0;    ///< generations actually published

    std::vector<RequestOutcome> outcomes; ///< slot per request (seq)
    std::vector<TenantOutcome> tenants;

    /** Canonical decision log: byte-identical across thread counts
     *  for the same spec (latencies deliberately excluded). */
    std::string decisionLog;

    LogHistogram decisionLatency; ///< seconds per decide()
    LogHistogram serviceLatency;  ///< seconds per request simulation
    double wallSeconds = 0.0;     ///< whole-session stopwatch

    /** Serving + staging snapshot at drain (spec.saveState target). */
    policy::ServeState state;
};

/**
 * Run one serving session to completion (or to a graceful drain when
 * the campaign stop latch trips). Callers wanting signal-driven
 * drain install the campaign handlers first, exactly like campaign
 * runs do.
 * @throws FatalError on an invalid spec or unloadable state file
 */
ServeResult runServe(const ServeSpec &spec);

/** Render @p result's canonical decision log text (exposed for
 *  tests; runServe() already fills result.decisionLog with it). */
std::string renderDecisionLog(const ServeSpec &spec,
                              const std::vector<ServeRequest> &trace,
                              const ServeResult &result);

} // namespace cohmeleon::serve

#endif // COHMELEON_SERVE_SERVE_LOOP_HH

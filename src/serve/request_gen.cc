#include "serve/request_gen.hh"

#include <cmath>

#include "app/parallel_runner.hh"
#include "app/random_app.hh"
#include "app/scenario.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cohmeleon::serve
{

namespace
{

/** A figure tenant's invocation stream: the app's chain steps
 *  flattened in execution order (phase, thread, loop, chain). */
std::vector<app::ChainStep>
flattenFigureApp(const std::string &name, const soc::Soc &soc)
{
    const app::AppSpec spec = app::figureApp(name);
    std::vector<app::ChainStep> steps;
    for (const app::PhaseSpec &phase : spec.phases) {
        for (const app::ThreadSpec &thread : phase.threads) {
            for (unsigned loop = 0; loop < thread.loops; ++loop)
                for (const app::ChainStep &step : thread.chain)
                    steps.push_back(step);
        }
    }
    fatalIf(steps.empty(), "figure app '", name,
            "' has no invocations to serve");
    for (const app::ChainStep &step : steps) {
        try {
            soc.findAcc(step.accName);
        } catch (const FatalError &) {
            fatal("figure tenant '", name, "' invokes accelerator '",
                  step.accName, "', which SoC '", soc.config().name,
                  "' does not have");
        }
    }
    return steps;
}

} // namespace

std::uint64_t
generationOf(std::uint64_t seq, const ServeSpec &spec)
{
    const std::uint64_t last =
        spec.requests == 0 ? 0
                           : (spec.requests - 1) / spec.swapInterval;
    return std::min(seq / spec.swapInterval, last);
}

std::uint64_t
generationCount(const ServeSpec &spec)
{
    return spec.requests == 0
               ? 1
               : (spec.requests - 1) / spec.swapInterval + 1;
}

std::vector<ServeRequest>
generateRequestTrace(const ServeSpec &spec, const soc::Soc &soc)
{
    validateServeSpec(spec);
    fatalIf(soc.numAccs() == 0, "SoC '", soc.config().name,
            "' has no accelerators to serve requests on");

    // Per-tenant invocation streams for the figure tenants.
    std::vector<std::vector<app::ChainStep>> figureSteps(
        spec.tenants.size());
    double totalWeight = 0.0;
    for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
        if (spec.tenants[t].source != "random")
            figureSteps[t] =
                flattenFigureApp(spec.tenants[t].source, soc);
        totalWeight += spec.tenants[t].weight;
    }

    const app::RandomAppParams sizeParams; // the standard class mix
    Rng stream(spec.seed);
    std::vector<std::uint64_t> perTenant(spec.tenants.size(), 0);
    std::vector<ServeRequest> trace;
    trace.reserve(spec.requests);
    double arrival = 0.0;

    for (std::uint64_t seq = 0; seq < spec.requests; ++seq) {
        ServeRequest req;
        req.seq = seq;
        req.generation = generationOf(seq, spec);

        // Weighted tenant draw from the stream RNG.
        double x = stream.uniformReal() * totalWeight;
        unsigned tenant = 0;
        for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
            tenant = static_cast<unsigned>(t);
            if ((x -= spec.tenants[t].weight) < 0.0)
                break;
        }
        req.tenant = tenant;
        req.seqInTenant = perTenant[tenant]++;

        // Open-loop arrival: exponential gaps at the requested rate.
        if (spec.arrivalRate > 0.0) {
            const double u = stream.uniformReal();
            arrival += -std::log1p(-u) / spec.arrivalRate;
            req.arrivalSec = arrival;
        }

        // Request content from the tenant's isolated stream.
        Rng r(app::experimentSeed(
            app::experimentSeed(spec.seed, tenant + 1),
            req.seqInTenant));
        if (spec.tenants[tenant].source == "random") {
            const unsigned acc =
                static_cast<unsigned>(r.uniformInt(soc.numAccs()));
            req.accName = soc.accelerator(acc).config().name;
            const app::SizeClass cls =
                app::drawSizeClass(r, sizeParams);
            const double jitter =
                1.0 + sizeParams.sizeJitter *
                          (2.0 * r.uniformReal() - 1.0);
            std::uint64_t bytes = static_cast<std::uint64_t>(
                std::llround(static_cast<double>(app::sizeForClass(
                                 cls, soc.config())) *
                             jitter));
            req.footprintBytes =
                std::max<std::uint64_t>(bytes, 2 * kLineBytes);
        } else {
            const std::vector<app::ChainStep> &steps =
                figureSteps[tenant];
            const app::ChainStep &step =
                steps[req.seqInTenant % steps.size()];
            req.accName = step.accName;
            req.footprintBytes = step.footprintBytes;
        }
        trace.push_back(std::move(req));
    }
    return trace;
}

std::vector<std::uint64_t>
generationReadQuota(const std::vector<ServeRequest> &trace,
                    const ServeSpec &spec)
{
    std::vector<std::uint64_t> quota(generationCount(spec), 0);
    for (const ServeRequest &req : trace)
        ++quota[req.generation];
    return quota;
}

} // namespace cohmeleon::serve

/**
 * @file
 * Declarative description of one serving session: the open-loop
 * request stream (tenant mix, arrival pacing, seeds), the decision
 * loop's width, and the background training cadence (swap interval,
 * per-generation shard/iteration counts, merge/explore strategies).
 *
 * Everything downstream — the request trace, the generation
 * schedule, every trained model — is a pure function of this spec,
 * which is what lets the same serve run replay byte-identically at
 * any thread count (`threads` and `arrival-rate` affect wall-clock
 * behaviour only, never a decision).
 *
 * The text form follows the scenario/campaign grammar ('#' comments,
 * 'key = value', line-numbered diagnostics, unknown keys are hard
 * errors):
 *
 *     serve = demo
 *     soc = soc1
 *     requests = 192
 *     threads = 2
 *     swap-interval = 64
 *     train = 3
 *     shards = 2
 *     merge = visit-weighted
 *     explore = linear
 *     model = tabular
 *     tenants = random, fig5
 *     tenant-weights = 2, 1
 *     arrival-rate = 0
 *     seed = 2024
 *
 * parse(serialize(x)) == x exactly (round-trip tested).
 */

#ifndef COHMELEON_SERVE_SERVE_SPEC_HH
#define COHMELEON_SERVE_SERVE_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rl/learned_model.hh"
#include "rl/reward.hh"
#include "rl/strategy.hh"

namespace cohmeleon::serve
{

/** One request source in the tenant mix. */
struct TenantSpec
{
    /** "random" (seeded random single-invocation requests) or a
     *  registered figure app name (its invocations round-robin). */
    std::string source = "random";
    /** Relative share of the arrival stream (> 0). */
    double weight = 1.0;
    /** Display label ("t0-random"); derived, not a spec key. */
    std::string label;

    bool
    operator==(const TenantSpec &o) const
    {
        return source == o.source && weight == o.weight;
    }
};

/** One serving session (see the file comment). */
struct ServeSpec
{
    std::string name = "serve";
    std::string soc = "soc1"; ///< preset name (soc::makeSocByName)

    std::uint64_t requests = 192; ///< request budget for the session
    unsigned threads = 1;         ///< decision worker threads
    /** Requests per model generation: after every swapInterval
     *  requests the next background-trained model takes over. */
    std::uint64_t swapInterval = 64;

    unsigned trainIterations = 3; ///< per-generation training passes
    unsigned trainShards = 2;     ///< per-generation training shards
    rl::MergeSpec merge;          ///< how shard tables fold
    rl::ExploreSpec explore;      ///< shard exploration schedule
    rl::ModelSpec model;          ///< learned-model backend served
    rl::RewardWeights weights;    ///< reward attribution weights

    std::vector<TenantSpec> tenants; ///< default: random, random

    /** Open-loop arrival pacing in requests/sec; 0 serves unpaced.
     *  Wall-clock only — arrival times never reach a decision. */
    double arrivalRate = 0.0;

    std::uint64_t seed = 2024;      ///< tenant draw + request stream
    std::uint64_t trainSeed = 2021; ///< per-generation shard apps
    std::uint64_t agentSeed = 7;    ///< per-generation shard agents

    std::string loadState;   ///< resume from a serving checkpoint
    std::string saveState;   ///< persist the serving+staging state
    std::string decisionLog; ///< write the per-request decision log

    ServeSpec() : tenants(2) {}

    bool operator==(const ServeSpec &o) const;
};

/** Validate a tenant source name.
 *  @return empty on success, else a diagnostic listing the known
 *          values (random + the registered figure apps) */
std::string checkTenantSource(const std::string &source);

/** Derive the display labels ("t<i>-<source>") for @p spec's
 *  tenants. Idempotent; call after any tenant edit. */
void labelTenants(ServeSpec &spec);

/**
 * Semantic validation beyond parsing: positive counts, a known SoC
 * preset, a non-empty tenant mix with valid sources and positive
 * finite weights, sane pacing.
 * @throws FatalError with a one-line diagnostic on the first problem
 */
void validateServeSpec(const ServeSpec &spec);

/** Parse the text form. @throws FatalError with "serve spec line N:
 *  ..." diagnostics on malformed input or unknown keys */
ServeSpec parseServeSpecString(const std::string &text);

/** Read and parse a serve spec file. @throws FatalError */
ServeSpec parseServeSpecFile(const std::string &path);

/** Canonical text form; parseServeSpecString(serialize(x)) == x. */
std::string serializeServeSpec(const ServeSpec &spec);

} // namespace cohmeleon::serve

#endif // COHMELEON_SERVE_SERVE_SPEC_HH

#include "noc/topology.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace cohmeleon::noc
{

MeshTopology::MeshTopology(unsigned cols, unsigned rows)
    : cols_(cols), rows_(rows)
{
    fatalIf(cols == 0 || rows == 0, "mesh dimensions must be positive");
}

Coord
MeshTopology::coordOf(TileId id) const
{
    panic_if(id >= tileCount(), "tile id ", id, " out of range");
    return Coord{static_cast<int>(id % cols_),
                 static_cast<int>(id / cols_)};
}

TileId
MeshTopology::idOf(Coord c) const
{
    panic_if(!contains(c), "coordinate out of mesh bounds");
    return static_cast<TileId>(c.y) * cols_ + static_cast<TileId>(c.x);
}

unsigned
MeshTopology::hops(TileId a, TileId b) const
{
    const Coord ca = coordOf(a);
    const Coord cb = coordOf(b);
    return static_cast<unsigned>(std::abs(ca.x - cb.x) +
                                 std::abs(ca.y - cb.y));
}

bool
MeshTopology::contains(Coord c) const
{
    return c.x >= 0 && c.y >= 0 && c.x < static_cast<int>(cols_) &&
           c.y < static_cast<int>(rows_);
}

} // namespace cohmeleon::noc

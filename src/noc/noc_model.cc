#include "noc/noc_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cohmeleon::noc
{

NocModel::NocModel(const MeshTopology &topo, NocParams params)
    : topo_(topo), params_(params)
{
    fatalIf(params.flitBytes == 0, "flit size must be positive");
    const std::size_t n =
        static_cast<std::size_t>(topo.tileCount()) * kNumPlanes;
    egress_.resize(n);
    ingress_.resize(n);
}

unsigned
NocModel::flitsFor(unsigned payloadBytes) const
{
    const unsigned payloadFlits =
        (payloadBytes + params_.flitBytes - 1) / params_.flitBytes;
    return 1 + payloadFlits; // one head flit carrying routing info
}

Server &
NocModel::egress(TileId tile, Plane plane)
{
    return egress_[static_cast<std::size_t>(tile) * kNumPlanes +
                   static_cast<std::size_t>(plane)];
}

Server &
NocModel::ingress(TileId tile, Plane plane)
{
    return ingress_[static_cast<std::size_t>(tile) * kNumPlanes +
                    static_cast<std::size_t>(plane)];
}

Cycles
NocModel::uncontendedLatency(TileId src, TileId dst,
                             unsigned payloadBytes) const
{
    const unsigned hops = topo_.hops(src, dst);
    const unsigned flits = 1 + (payloadBytes + params_.flitBytes - 1) /
                                   params_.flitBytes;
    return params_.routerPipeline + hops * params_.hopLatency + flits;
}

void
NocModel::reset()
{
    for (auto &s : egress_)
        s.reset();
    for (auto &s : ingress_)
        s.reset();
    packets_ = 0;
    flits_ = 0;
}

Cycles
NocModel::totalWaitCycles() const
{
    Cycles total = 0;
    for (const auto &s : egress_)
        total += s.waitCycles();
    for (const auto &s : ingress_)
        total += s.waitCycles();
    return total;
}

} // namespace cohmeleon::noc

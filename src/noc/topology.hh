/**
 * @file
 * 2D-mesh topology: tile coordinates, XY routing distance, and the
 * mapping between tile ids and grid positions, mirroring ESP's grid of
 * tiles connected by a 2D-mesh NoC.
 */

#ifndef COHMELEON_NOC_TOPOLOGY_HH
#define COHMELEON_NOC_TOPOLOGY_HH

#include <cstdint>

#include "sim/types.hh"

namespace cohmeleon::noc
{

/** Grid coordinate of a tile. */
struct Coord
{
    int x = 0; ///< column
    int y = 0; ///< row

    bool operator==(const Coord &) const = default;
};

/** Row-major 2D mesh of cols x rows tiles. */
class MeshTopology
{
  public:
    /** @pre cols >= 1 && rows >= 1 */
    MeshTopology(unsigned cols, unsigned rows);

    unsigned cols() const { return cols_; }
    unsigned rows() const { return rows_; }
    unsigned tileCount() const { return cols_ * rows_; }

    /** Grid position of tile @p id. @pre id < tileCount() */
    Coord coordOf(TileId id) const;

    /** Tile id at @p c. @pre c within bounds */
    TileId idOf(Coord c) const;

    /** Manhattan (XY-routed) hop count between two tiles. */
    unsigned hops(TileId a, TileId b) const;

    bool contains(Coord c) const;

  private:
    unsigned cols_;
    unsigned rows_;
};

} // namespace cohmeleon::noc

#endif // COHMELEON_NOC_TOPOLOGY_HH

/**
 * @file
 * Timing/contention model of ESP's multi-plane 2D-mesh NoC.
 *
 * ESP's NoC has 6 32-bit physical planes with one cycle of latency per
 * router hop. We model each plane's per-tile injection (egress) and
 * ejection (ingress) links as FIFO servers; a packet charges flit
 * serialization at both endpoints and pays the hop latency in between.
 * Endpoint contention is what matters for the phenomena the paper
 * studies (many accelerators converging on a few memory tiles), so
 * intermediate-router contention is deliberately not modeled; the
 * bench/bench_micro binary quantifies the cost of this model.
 */

#ifndef COHMELEON_NOC_NOC_MODEL_HH
#define COHMELEON_NOC_NOC_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "noc/topology.hh"
#include "sim/server.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cohmeleon::noc
{

/** Physical-plane roles, matching ESP's plane assignment. */
enum class Plane : std::uint8_t
{
    kCohReq = 0, ///< coherence requests (GetS/GetM/Put)
    kCohRsp = 1, ///< coherence responses (data)
    kCohFwd = 2, ///< forwarded requests (recalls, invalidations)
    kDmaReq = 3, ///< DMA requests
    kDmaRsp = 4, ///< DMA responses (data)
    kMisc = 5,   ///< interrupts, monitors, config
};

constexpr unsigned kNumPlanes = 6;

/** Static NoC parameters. */
struct NocParams
{
    Cycles hopLatency = 1;  ///< per-router latency (paper: 1 cycle)
    unsigned flitBytes = 4; ///< 32-bit planes
    Cycles routerPipeline = 2; ///< fixed injection/ejection overhead
};

/** Timing model for one SoC's NoC. */
class NocModel
{
  public:
    NocModel(const MeshTopology &topo, NocParams params);

    /**
     * Transfer @p payloadBytes from @p src to @p dst on @p plane.
     *
     * Charges serialization on the source egress and destination
     * ingress link of the plane and returns the arrival time of the
     * packet tail.
     *
     * @param now earliest injection time
     * @return arrival (completion) time at the destination
     */
    Cycles transfer(Cycles now, TileId src, TileId dst, Plane plane,
                    unsigned payloadBytes);

    /** Pure latency of a @p payloadBytes packet with no contention. */
    Cycles uncontendedLatency(TileId src, TileId dst,
                              unsigned payloadBytes) const;

    /** Flits needed for a payload (one head flit + payload flits). */
    unsigned flitsFor(unsigned payloadBytes) const;

    const MeshTopology &topology() const { return topo_; }
    const NocParams &params() const { return params_; }

    std::uint64_t packets() const { return packets_; }
    std::uint64_t flits() const { return flits_; }

    /** Clear all link occupancy and statistics. */
    void reset();

    /** Aggregate wait cycles over all links (congestion indicator). */
    Cycles totalWaitCycles() const;

  private:
    Server &egress(TileId tile, Plane plane);
    Server &ingress(TileId tile, Plane plane);

    const MeshTopology &topo_;
    NocParams params_;
    std::vector<Server> egress_;  ///< [tile * kNumPlanes + plane]
    std::vector<Server> ingress_; ///< [tile * kNumPlanes + plane]
    std::uint64_t packets_ = 0;
    std::uint64_t flits_ = 0;
};

} // namespace cohmeleon::noc

#endif // COHMELEON_NOC_NOC_MODEL_HH

/**
 * @file
 * Timing/contention model of ESP's multi-plane 2D-mesh NoC.
 *
 * ESP's NoC has 6 32-bit physical planes with one cycle of latency per
 * router hop. We model each plane's per-tile injection (egress) and
 * ejection (ingress) links as FIFO servers; a packet charges flit
 * serialization at both endpoints and pays the hop latency in between.
 * Endpoint contention is what matters for the phenomena the paper
 * studies (many accelerators converging on a few memory tiles), so
 * intermediate-router contention is deliberately not modeled; the
 * bench/bench_micro binary quantifies the cost of this model.
 */

#ifndef COHMELEON_NOC_NOC_MODEL_HH
#define COHMELEON_NOC_NOC_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "noc/topology.hh"
#include "sim/server.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cohmeleon::noc
{

/** Physical-plane roles, matching ESP's plane assignment. */
enum class Plane : std::uint8_t
{
    kCohReq = 0, ///< coherence requests (GetS/GetM/Put)
    kCohRsp = 1, ///< coherence responses (data)
    kCohFwd = 2, ///< forwarded requests (recalls, invalidations)
    kDmaReq = 3, ///< DMA requests
    kDmaRsp = 4, ///< DMA responses (data)
    kMisc = 5,   ///< interrupts, monitors, config
};

constexpr unsigned kNumPlanes = 6;

/** Static NoC parameters. */
struct NocParams
{
    Cycles hopLatency = 1;  ///< per-router latency (paper: 1 cycle)
    unsigned flitBytes = 4; ///< 32-bit planes
    Cycles routerPipeline = 2; ///< fixed injection/ejection overhead
};

/**
 * Precomputed route for repeated transfers between one (src, dst,
 * plane, payload) endpoint pair: the topology walk, flit count, and
 * link-server lookups are hoisted out of per-line loops. Produced by
 * NocModel::plan(); consumed by the plan-based transfer() overload,
 * which charges exactly what the ad-hoc transfer() charges.
 */
struct TransferPlan
{
    Server *egress = nullptr;  ///< source injection link
    Server *ingress = nullptr; ///< destination ejection link
    unsigned nflits = 0;       ///< head flit + payload flits
    Cycles hopCycles = 0;      ///< hops * hopLatency
    Cycles routerPipeline = 0;
    bool local = false;        ///< src == dst (no link traversal)
};

/** Timing model for one SoC's NoC. */
class NocModel
{
  public:
    NocModel(const MeshTopology &topo, NocParams params);

    /**
     * Transfer @p payloadBytes from @p src to @p dst on @p plane.
     *
     * Charges serialization on the source egress and destination
     * ingress link of the plane and returns the arrival time of the
     * packet tail.
     *
     * @param now earliest injection time
     * @return arrival (completion) time at the destination
     */
    Cycles
    transfer(Cycles now, TileId src, TileId dst, Plane plane,
             unsigned payloadBytes)
    {
        return transfer(plan(src, dst, plane, payloadBytes), now);
    }

    /** Resolve the route once for a run of same-endpoint transfers. */
    TransferPlan
    plan(TileId src, TileId dst, Plane plane, unsigned payloadBytes)
    {
        TransferPlan p;
        p.nflits = flitsFor(payloadBytes);
        p.routerPipeline = params_.routerPipeline;
        if (src == dst) {
            p.local = true;
            return p;
        }
        p.egress = &egress(src, plane);
        p.ingress = &ingress(dst, plane);
        p.hopCycles = topo_.hops(src, dst) * params_.hopLatency;
        return p;
    }

    /** Arrival times of a back-to-back packet run: packet k of the
     *  run completes at first + k*stride. */
    struct TransferRun
    {
        Cycles first = 0;
        Cycles stride = 0;
    };

    /**
     * Closed form of @p count transfer(p, now) calls (a DMA burst's
     * request stream): the source link serializes the packets
     * back-to-back, so head arrivals at the destination are spaced
     * exactly nflits apart and the ejection link inherits that
     * spacing. All link counters advance exactly as the per-packet
     * loop would; only the arithmetic is hoisted.
     */
    TransferRun
    transferRun(const TransferPlan &p, Cycles now, std::uint64_t count)
    {
        packets_ += count;
        flits_ += count * p.nflits;
        if (count == 0)
            return {};
        if (p.local)
            return {now + p.routerPipeline, 0};
        const Cycles injectFirst =
            p.egress->acquireRun(now, p.nflits, count);
        const Cycles headArrivalFirst = injectFirst + 1 + p.hopCycles;
        const Cycles ejectFirst = p.ingress->acquireRunSpaced(
            headArrivalFirst, p.nflits, count);
        return {ejectFirst + p.nflits + p.routerPipeline, p.nflits};
    }

    /**
     * @p count transfers along one route with per-packet injection
     * times @p starts (not necessarily uniform — e.g. DMA responses
     * trailing DRAM completions): results land in @p out (aliasing
     * starts is allowed). Equivalent to count transfer(p, starts[k])
     * calls, with the link-server state held in registers across the
     * run.
     */
    void
    transferEach(const TransferPlan &p, const Cycles *starts,
                 std::uint64_t count, Cycles *out)
    {
        packets_ += count;
        flits_ += count * p.nflits;
        if (p.local) {
            for (std::uint64_t k = 0; k < count; ++k)
                out[k] = starts[k] + p.routerPipeline;
            return;
        }
        Server::Run egressRun(*p.egress);
        Server::Run ingressRun(*p.ingress);
        for (std::uint64_t k = 0; k < count; ++k) {
            const Cycles injectStart =
                egressRun.acquire(starts[k], p.nflits);
            const Cycles headArrival = injectStart + 1 + p.hopCycles;
            const Cycles ejectStart =
                ingressRun.acquire(headArrival, p.nflits);
            out[k] = ejectStart + p.nflits + p.routerPipeline;
        }
        egressRun.commit();
        ingressRun.commit();
    }

    /** Transfer along a precomputed route; earliest injection @p now. */
    Cycles
    transfer(const TransferPlan &p, Cycles now)
    {
        ++packets_;
        flits_ += p.nflits;
        if (p.local) {
            // Local access within a tile: only the router pipeline.
            return now + p.routerPipeline;
        }
        // Serialize on the source's injection link...
        const Cycles injectStart = p.egress->acquire(now, p.nflits);
        const Cycles headDeparture = injectStart + 1;
        // ...traverse the mesh...
        const Cycles headArrival = headDeparture + p.hopCycles;
        // ...then serialize on the destination's ejection link.
        const Cycles ejectStart =
            p.ingress->acquire(headArrival, p.nflits);
        return ejectStart + p.nflits + p.routerPipeline;
    }

    /** Pure latency of a @p payloadBytes packet with no contention. */
    Cycles uncontendedLatency(TileId src, TileId dst,
                              unsigned payloadBytes) const;

    /** Flits needed for a payload (one head flit + payload flits). */
    unsigned flitsFor(unsigned payloadBytes) const;

    const MeshTopology &topology() const { return topo_; }
    const NocParams &params() const { return params_; }

    std::uint64_t packets() const { return packets_; }
    std::uint64_t flits() const { return flits_; }

    /** Clear all link occupancy and statistics. */
    void reset();

    /** Aggregate wait cycles over all links (congestion indicator). */
    Cycles totalWaitCycles() const;

  private:
    Server &egress(TileId tile, Plane plane);
    Server &ingress(TileId tile, Plane plane);

    const MeshTopology &topo_;
    NocParams params_;
    std::vector<Server> egress_;  ///< [tile * kNumPlanes + plane]
    std::vector<Server> ingress_; ///< [tile * kNumPlanes + plane]
    std::uint64_t packets_ = 0;
    std::uint64_t flits_ = 0;
};

} // namespace cohmeleon::noc

#endif // COHMELEON_NOC_NOC_MODEL_HH
